package experiments

import (
	"fmt"

	"tensortee/internal/config"
	"tensortee/internal/cpusim"
	"tensortee/internal/mee"
	"tensortee/internal/sim"
	"tensortee/internal/stats"
	"tensortee/internal/tensor"
	"tensortee/internal/trace"
	"tensortee/internal/workload"
)

// cpuAdamSetup builds a CPU simulator plus an Adam stream factory over a
// sampled parameter window.
type cpuAdamSetup struct {
	cfg config.Config
	sim *cpusim.Sim
	mk  func(threads, shift int) []trace.Stream
}

// newCPUAdam samples `elems` fp32 elements as a single parameter group.
func newCPUAdam(mode mee.Mode, elems int) *cpuAdamSetup {
	cfg := config.Default(config.BaselineSGXMGX)
	arena := tensor.NewArena(0, 64)
	quads := []trace.AdamTensors{trace.NewAdamTensors(arena, "p0", elems)}
	return buildCPUAdam(cfg, mode, arena, quads)
}

// newCPUAdamModel lays out a sampled image of the model's optimizer state,
// packed per layer the way DeepSpeed's ZeRO-Offload flattens parameter
// groups into contiguous fp32 buffers (one w/g/m/v quad per layer plus one
// for the embedding and head). The sample keeps the real group count but
// scales footprints to targetBytes — large enough that the working set
// streams through the LLC each iteration exactly like the full-size state
// does (optimizer state is GBs, far beyond any cache). Time scales
// linearly with footprint.
func newCPUAdamModel(mode mee.Mode, m workload.Model, targetBytes int64) *cpuAdamSetup {
	cfg := config.Default(config.BaselineSGXMGX)
	// Scaled simulation: the sampled footprint is ~1/400 of the real
	// optimizer state, so the cache hierarchy is scaled down with it —
	// otherwise per-core chunks that stream through caches at full scale
	// would fit entirely inside L2 here and never emit writebacks in
	// stream order, which is not the regime the paper measures.
	cfg.CPU.L1SizeBytes /= 2
	cfg.CPU.L2SizeBytes /= 8
	cfg.CPU.L3SizeBytes /= 8
	arena := tensor.NewArena(0, 64)
	var quads []trace.AdamTensors

	perLayer := make(map[string]int)
	var order []string
	var total int64
	for _, t := range m.ParamTensors() {
		group := "misc"
		if i := indexByte(t.Name, '.'); i > 0 && t.Name[0] == 'l' {
			group = t.Name[:i]
		}
		if _, seen := perLayer[group]; !seen {
			order = append(order, group)
		}
		perLayer[group] += t.Elems
		total += int64(t.Elems)
	}
	// 16 bytes of optimizer state per element (w,g,m,v fp32).
	scale := float64(targetBytes) / 16 / float64(total)
	for _, g := range order {
		elems := int(float64(perLayer[g]) * scale)
		if elems < 1024 {
			elems = 1024
		}
		quads = append(quads, trace.NewAdamTensors(arena, g, elems))
	}
	return buildCPUAdam(cfg, mode, arena, quads)
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// newCPUAdamUnpacked lays out the raw per-tensor inventory (no flattening):
// quadrupling the tensor count past the 512-entry Meta Table. This is the
// over-capacity regime of the Section 6.2 scalability note, used by the
// ablation benchmarks.
func newCPUAdamUnpacked(mode mee.Mode, m workload.Model, shrink int) *cpuAdamSetup {
	cfg := config.Default(config.BaselineSGXMGX)
	arena := tensor.NewArena(0, 64)
	var quads []trace.AdamTensors
	for _, t := range m.ParamTensors() {
		elems := t.Elems / shrink
		if elems < 64 {
			elems = 64
		}
		if elems > 1<<18 {
			elems = 1 << 18
		}
		quads = append(quads, trace.NewAdamTensors(arena, t.Name, elems))
	}
	return buildCPUAdam(cfg, mode, arena, quads)
}

func buildCPUAdam(cfg config.Config, mode mee.Mode, arena *tensor.Arena, quads []trace.AdamTensors) *cpuAdamSetup {
	lines := int(arena.Next()/64) + 64
	s := cpusim.New(cfg, cpusim.Options{Mode: mode, DataLines: lines})
	return &cpuAdamSetup{
		cfg: cfg,
		sim: s,
		mk: func(threads, shift int) []trace.Stream {
			return trace.AdamStreams(quads, trace.AdamConfig{
				LineBytes:      cfg.CPU.LineBytes,
				ComputePerLine: sim.Cycles(40, cfg.CPU.FreqHz),
				Cores:          threads,
				ChunkShift:     shift,
			})
		},
	}
}

const fig3Elems = 1 << 21

// fig18Bytes is the sampled optimizer-state footprint for the iteration
// sweeps. Together with the scaled cache hierarchy of newCPUAdamModel it
// keeps per-core chunks well beyond the private caches, so the working set
// streams through the hierarchy each iteration exactly like the real
// GB-scale state does.
const fig18Bytes = 64 << 20

// Fig3 reproduces the motivation study: normalized Adam latency and SGX
// slowdown versus thread count (1-8). The paper reports the transition to
// memory-bound and a slowdown reaching ~3.7x.
func Fig3(_ *Env) (*Report, error) {
	r := newReport("fig3", "CPU TEE overhead vs thread count (Adam step)")
	tb := stats.NewTable("Adam step, 2M-element window", "threads", "non-secure (ms)", "normalized", "SGX (ms)", "slowdown")

	// Every (threads, mode) point is an independent freshly-built
	// simulator, so the whole sweep fans out over the worker pool; rows
	// assemble in thread order afterwards, keeping the rendering
	// identical to the serial sweep.
	threadPoints := []int{1, 2, 4, 8}
	nsTimes := make([]sim.Dur, len(threadPoints))
	sgxTimes := make([]sim.Dur, len(threadPoints))
	Sweep(2*len(threadPoints), func(j int) {
		threads := threadPoints[j/2]
		if j%2 == 0 {
			ns := newCPUAdam(mee.ModeOff, fig3Elems)
			nsTimes[j/2] = ns.sim.Run(ns.mk(threads, 0)).Makespan
		} else {
			sgx := newCPUAdam(mee.ModeSGX, fig3Elems)
			sgxTimes[j/2] = sgx.sim.Run(sgx.mk(threads, 0)).Makespan
		}
	})
	ns1 := nsTimes[0]
	maxSlow := 0.0
	for i, threads := range threadPoints {
		slow := float64(sgxTimes[i]) / float64(nsTimes[i])
		if slow > maxSlow {
			maxSlow = slow
		}
		tb.AddRow(threads, nsTimes[i].Millis(),
			float64(nsTimes[i])/float64(ns1), sgxTimes[i].Millis(), slow)
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["max_slowdown"] = maxSlow
	r.Notes = append(r.Notes, "paper: slowdown up to ~3.7x at 8 threads; non-secure flattens as the sweep turns memory-bound")
	return r, nil
}

// Fig18 reproduces the Meta Table hit-rate convergence across iterations
// using GPT2-M's real tensor inventory (scaled footprint, full tensor
// count) on 8 threads.
func Fig18(_ *Env) (*Report, error) {
	r := newReport("fig18", "Meta Table hit rate vs iteration (GPT2-M inventory)")
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		return nil, err
	}
	setup := newCPUAdamModel(mee.ModeTensor, m, fig18Bytes)
	tb := stats.NewTable("8 threads", "iteration", "hit_all", "hit_in", "hit_boundary")

	iters := []int{0, 1, 2, 5, 10, 20}
	next := 0
	var lastIn, lastAll float64
	for it := 0; it <= 20; it++ {
		setup.sim.Analyzer().ResetStats()
		// Dynamic work scheduling shifts chunk seams a little each
		// iteration (the re-detection the paper's Figure 18 converges
		// through).
		setup.sim.Run(setup.mk(setup.cfg.CPU.Cores, (it*3)%17))
		st := setup.sim.Analyzer().Stats()
		if next < len(iters) && it == iters[next] {
			tb.AddRow(it, st.HitAllRate(), st.HitInRate(), st.HitBoundaryRate())
			next++
		}
		lastIn, lastAll = st.HitInRate(), st.HitAllRate()
	}
	r.Tables = append(r.Tables, tb)
	r.Scalars["final_hit_in"] = lastIn
	r.Scalars["final_hit_all"] = lastAll
	r.Notes = append(r.Notes, "paper: hit_all ~1 after one iteration; hit_in ~80% by iteration 5, ~95% by 20")
	return r, nil
}

// Fig19 reproduces the CPU performance comparison: normalized latency of
// SGX, SoftVN, and TensorTEE at increasing iteration counts, for 4 and 8
// threads.
func Fig19(_ *Env) (*Report, error) {
	r := newReport("fig19", "CPU TEE comparison at iteration counts (normalized latency)")
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		return nil, err
	}
	const shrink = fig18Bytes
	iters := []int{1, 2, 5, 10, 20}
	threadPoints := []int{4, 8}

	// Each (thread count, system) chain is a self-contained simulator
	// sequence — the four chains of a block and the two blocks share
	// nothing — so all eight run on the worker pool. Iterations within
	// the TensorTEE chain stay serial (the Meta Table converges across
	// them); rows assemble in the original order afterwards.
	type fig19Block struct {
		base, sgxTime, softTime sim.Dur
		tte                     []sim.Dur // one sample per entry of iters
	}
	blocks := make([]fig19Block, len(threadPoints))
	Sweep(4*len(threadPoints), func(j int) {
		b, chain := &blocks[j/4], j%4
		threads := threadPoints[j/4]
		switch chain {
		case 0:
			ns := newCPUAdamModel(mee.ModeOff, m, shrink)
			b.base = ns.sim.Run(ns.mk(threads, 0)).Makespan
		case 1:
			sgx := newCPUAdamModel(mee.ModeSGX, m, shrink)
			b.sgxTime = sgx.sim.Run(sgx.mk(threads, 0)).Makespan
		case 2:
			// SoftVN: VNs declared by software, so every access hits from
			// the first iteration (simulated as the converged tensor
			// path), plus the critical-path VN-table lookup penalty its
			// design pays — worse at higher thread counts where table
			// ports contend (Section 2.2 limitations; the paper reports
			// 1.04x/1.13x).
			soft := newCPUAdamModel(mee.ModeTensor, m, shrink)
			for i := 0; i < 4; i++ {
				b.softTime = soft.sim.Run(soft.mk(threads, 0)).Makespan
			}
		case 3:
			tte := newCPUAdamModel(mee.ModeTensor, m, shrink)
			b.tte = make([]sim.Dur, len(iters))
			next := 0
			for it := 1; it <= iters[len(iters)-1]; it++ {
				res := tte.sim.Run(tte.mk(threads, (it*3)%17))
				if next < len(iters) && it == iters[next] {
					b.tte[next] = res.Makespan
					next++
				}
			}
		}
	})

	for i, threads := range threadPoints {
		b := blocks[i]
		lookupPenalty := 1.0 + 0.01*float64(threads)
		softNorm := float64(b.softTime) / float64(b.base) * lookupPenalty

		tb := stats.NewTable(fmt.Sprintf("%d threads", threads),
			"config", "normalized latency")
		tb.AddRow("Non-secure", 1.0)
		tb.AddRow("SGX", float64(b.sgxTime)/float64(b.base))
		tb.AddRow("SoftVN", softNorm)
		for k, it := range iters {
			tb.AddRow(fmt.Sprintf("TensorTEE@%d", it), float64(b.tte[k])/float64(b.base))
		}
		r.Scalars[fmt.Sprintf("tte_final_%dt", threads)] = float64(b.tte[len(iters)-1]) / float64(b.base)
		r.Scalars[fmt.Sprintf("sgx_%dt", threads)] = float64(b.sgxTime) / float64(b.base)
		r.Tables = append(r.Tables, tb)
	}
	r.Notes = append(r.Notes, "paper: SGX 2.64x/3.65x at 4/8 threads; TensorTEE 2.56x..1.05x (4t) and 3.32x..1.03x (8t) converging with iterations; SoftVN 1.04/1.13")
	return r, nil
}

// GEMMDetection reproduces the Section 6.2 complex-pattern study: a
// 256x256 fp32 matrix read through 64x64 tiles reaches ~98.8% hit_in after
// a single GEMM pass.
func GEMMDetection(_ *Env) (*Report, error) {
	r := newReport("gemm", "Tiled GEMM tensor detection (Section 6.2)")
	cfg := config.Default(config.BaselineSGXMGX)
	s := cpusim.New(cfg, cpusim.Options{Mode: mee.ModeTensor, DataLines: 1 << 16})
	mk := func() []trace.Stream {
		return []trace.Stream{trace.GEMMStream(trace.GEMMConfig{
			Base: 0, Rows: 256, Cols: 256, TileRows: 64, TileCols: 64, Repeats: 4,
		})}
	}
	s.Run(mk())
	s.Analyzer().ResetStats()
	s.DropCaches()
	s.Run(mk())
	rate := s.Analyzer().Stats().HitInRate()

	tb := stats.NewTable("256x256 matrix, 64x64 tiles", "pass", "hit_in rate")
	tb.AddRow("after one full GEMM", rate)
	r.Tables = append(r.Tables, tb)
	r.Scalars["hit_in"] = rate
	r.Notes = append(r.Notes, "paper: 98.8% hit_in after a single GEMM via entries merging")
	return r, nil
}
