package tensortee

import (
	"errors"
	"fmt"

	"tensortee/internal/mee"
	"tensortee/internal/npumac"
)

// Sentinel errors returned by the Platform API. Wrapped failures keep
// their full diagnostic chain, so both the sentinel and the underlying
// internal error types match with errors.Is / errors.As:
//
//	if errors.Is(err, tensortee.ErrTampered) { ... }
var (
	// ErrUnknownTensor reports an operation on a tensor name that was
	// never created on this platform.
	ErrUnknownTensor = errors.New("tensortee: unknown tensor")
	// ErrTensorExists reports a CreateTensor with an already-used name.
	ErrTensorExists = errors.New("tensortee: tensor already exists")
	// ErrTampered reports a detected integrity violation: a MAC or Merkle
	// check failed on read, transfer, or at a verification barrier.
	ErrTampered = errors.New("tensortee: integrity violation")
	// ErrPoisoned reports use of a tensor whose delayed verification has
	// not completed (or has failed): the poison bit is still set.
	ErrPoisoned = errors.New("tensortee: tensor poisoned (unverified)")
	// ErrRegionFull reports a CreateTensor that exceeds the enclave's
	// protected region.
	ErrRegionFull = errors.New("tensortee: protected region full")
)

// errUnknownTensor builds an ErrUnknownTensor for a name.
func errUnknownTensor(name string) error {
	return fmt.Errorf("%w: %q", ErrUnknownTensor, name)
}

// classify wraps integrity failures surfacing from the internal layers
// with the matching public sentinel. Errors that are neither integrity
// nor poison failures pass through unchanged.
func classify(err error) error {
	if err == nil {
		return nil
	}
	var ie *mee.IntegrityError
	var ve *npumac.VerificationError
	switch {
	case errors.As(err, &ve):
		if ve.Unverified {
			return fmt.Errorf("%w: %w", ErrPoisoned, err)
		}
		return fmt.Errorf("%w: %w", ErrTampered, err)
	case errors.As(err, &ie):
		return fmt.Errorf("%w: %w", ErrTampered, err)
	}
	return err
}
