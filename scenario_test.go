package tensortee

import (
	"context"
	"errors"
	"testing"
)

// TestRunScenarioSentinels pins that spec rejections surface through the
// public API as the re-exported sentinels, before any simulation runs.
func TestRunScenarioSentinels(t *testing.T) {
	r := NewRunner()
	ctx := context.Background()

	cases := []struct {
		name     string
		spec     Scenario
		sentinel error
	}{
		{"unknown model", Scenario{
			Model:   ScenarioModel{Name: "GPT-9000"},
			Systems: []ScenarioSystem{{Kind: "tensortee"}},
		}, ErrUnknownModel},
		{"zero sweep bound", Scenario{
			Model:   ScenarioModel{Name: "GPT2-M"},
			Systems: []ScenarioSystem{{Kind: "tensortee"}},
			Sweep:   &ScenarioSweep{Axis: "hidden", Values: []float64{0}},
		}, ErrBadSweep},
		{"calibration-breaking override", Scenario{
			Model:   ScenarioModel{Name: "GPT2-M"},
			Systems: []ScenarioSystem{{Kind: "tensortee", Overrides: &ScenarioOverrides{RegionMB: 8}}},
		}, ErrUnsafeOverride},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := r.RunScenario(ctx, tc.spec)
			if err == nil {
				t.Fatal("RunScenario accepted an invalid spec")
			}
			if !errors.Is(err, ErrInvalidScenario) {
				t.Errorf("error %v does not match ErrInvalidScenario", err)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("error %v does not match the specific sentinel", err)
			}
		})
	}
}

// TestScenarioReproducesFig16 pins the acceptance criterion: a scenario
// spec naming a Table-2 model and the paper's three default systems yields
// numbers identical to the registry's fig16 — same calibrated systems,
// same simulated durations, bit-for-bit equal cells. The shared
// goldenRunner keeps calibration to one pass for the whole test binary.
func TestScenarioReproducesFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates end-to-end systems")
	}
	if raceEnabled {
		t.Skip("heavy under the race detector; the non-race CI job covers it")
	}
	fig16, err := goldenRunner.Cached(context.Background(), "fig16")
	if err != nil {
		t.Fatal(err)
	}
	table := fig16.Tables[0]

	for _, row := range table.Rows {
		model := row[0].Text
		t.Run(model, func(t *testing.T) {
			res, err := goldenRunner.RunScenario(context.Background(), Scenario{
				Name:    "fig16-" + model,
				Model:   ScenarioModel{Name: model},
				Systems: []ScenarioSystem{{Kind: "non-secure"}, {Kind: "sgx-mgx"}, {Kind: "tensortee"}},
				Metrics: []string{"total"},
			})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Tables[0]
			// Scenario rows: (point, model, system, total). fig16 columns
			// 1..3 are the three systems' totals in the same order.
			if len(st.Rows) != 3 {
				t.Fatalf("scenario rows = %d, want 3", len(st.Rows))
			}
			for i := 0; i < 3; i++ {
				got := st.Rows[i][3].Number
				want := row[1+i].Number
				if got != want {
					t.Errorf("system %d total = %v, want fig16's %v", i, got, want)
				}
			}
		})
	}

	// The speedup convention (first listed system over this one) matches
	// fig16's baseline/TensorTEE ratio when the baseline is listed first.
	m := table.Rows[1][0].Text
	res, err := goldenRunner.RunScenario(context.Background(), Scenario{
		Model:   ScenarioModel{Name: m},
		Systems: []ScenarioSystem{{Kind: "sgx-mgx"}, {Kind: "tensortee"}},
		Metrics: []string{"speedup"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Tables[0].Rows[1][3].Number, table.Rows[1][4].Number; got != want {
		t.Errorf("speedup = %v, want fig16's %v", got, want)
	}
}

// TestScenarioSharesCalibration pins the cache key semantics: a scenario
// run with default systems must reuse the Runner's calibrated systems (no
// new entries), while an override fingerprint gets its own entry.
func TestScenarioSharesCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a system")
	}
	r := NewRunner()
	spec := Scenario{
		Model:   ScenarioModel{Layers: 1, Hidden: 128, Heads: 2, Batch: 1, SeqLen: 64},
		Systems: []ScenarioSystem{{Kind: "non-secure"}},
	}
	if _, err := r.RunScenario(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if n := len(r.cache.entries); n != 1 {
		t.Fatalf("cache entries after first run = %d, want 1", n)
	}
	// Same config (different model) → same calibration entry.
	spec.Model = ScenarioModel{Layers: 2, Hidden: 256, Heads: 4}
	if _, err := r.RunScenario(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if n := len(r.cache.entries); n != 1 {
		t.Errorf("cache entries after same-config run = %d, want 1", n)
	}
	// Overridden config → its own entry.
	spec.Systems = []ScenarioSystem{{Kind: "non-secure", Overrides: &ScenarioOverrides{DRAMChannels: 4}}}
	if _, err := r.RunScenario(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if n := len(r.cache.entries); n != 2 {
		t.Errorf("cache entries after override run = %d, want 2", n)
	}
}
