//go:build race

package tensortee

// raceEnabled reports whether the race detector is compiled in; the
// heaviest sweep tests skip under it (the detector slows the simulators
// ~10x past the test timeout, and they add no synchronization coverage
// beyond the fast fan-out tests).
const raceEnabled = true
