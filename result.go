package tensortee

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tensortee/internal/experiments"
	"tensortee/internal/stats"
)

// Cell is one typed table value: every cell carries its rendered text, and
// numeric cells additionally carry the raw number, so callers never parse
// strings to get at the data.
type Cell struct {
	// Text is the human-readable rendering.
	Text string
	// Number is the raw value for numeric cells (0 otherwise).
	Number float64
	// IsNumber reports whether Number is meaningful.
	IsNumber bool
}

// String returns the rendered text.
func (c Cell) String() string { return c.Text }

// MarshalJSON emits numeric cells as JSON numbers and the rest as strings.
func (c Cell) MarshalJSON() ([]byte, error) {
	if c.IsNumber {
		return json.Marshal(c.Number)
	}
	return json.Marshal(c.Text)
}

// UnmarshalJSON inverts MarshalJSON: JSON numbers become numeric cells
// (with a full-precision text rendering), strings become text cells, and
// null becomes the empty text cell (MarshalJSON never emits null, but
// decoding must not fabricate a numeric zero from it). This lets a Result
// round-trip through its own JSON, so HTTP clients of tensorteed can
// decode responses back into typed Results.
func (c *Cell) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*c = Cell{}
		return nil
	}
	var n float64
	if err := json.Unmarshal(b, &n); err == nil {
		*c = Cell{Text: strconv.FormatFloat(n, 'g', -1, 64), Number: n, IsNumber: true}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("tensortee: cell is neither number nor string: %w", err)
	}
	*c = Cell{Text: s}
	return nil
}

// ResultTable is one table of an experiment result: named columns and
// typed rows.
type ResultTable struct {
	// Title is the table caption.
	Title string `json:"title"`
	// Columns are the header names, in display order.
	Columns []string `json:"columns"`
	// Rows are the table body; every row has one Cell per column.
	Rows [][]Cell `json:"rows"`
}

// Column returns the index of the named column, or -1.
func (t *ResultTable) Column(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Result is one experiment's typed outcome: the tables and headline
// scalars the paper reports, plus free-form notes. It replaces the
// pre-rendered string RunExperiment used to return.
type Result struct {
	// ID is the experiment id (e.g. "fig16").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// Tables holds the typed tables in report order.
	Tables []ResultTable `json:"tables"`
	// Scalars holds named headline numbers (e.g. "avg_speedup").
	Scalars map[string]float64 `json:"scalars,omitempty"`
	// Notes carries the paper-context annotations.
	Notes []string `json:"notes,omitempty"`
	// Elapsed is the wall-clock time the experiment took to regenerate.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// newResult converts an internal report into the public typed form.
func newResult(r *experiments.Report, elapsed time.Duration) *Result {
	out := &Result{
		ID:      r.ID,
		Title:   r.Title,
		Notes:   append([]string(nil), r.Notes...),
		Elapsed: elapsed,
	}
	if len(r.Scalars) > 0 {
		out.Scalars = make(map[string]float64, len(r.Scalars))
		for k, v := range r.Scalars {
			out.Scalars[k] = v
		}
	}
	for _, tb := range r.Tables {
		rt := ResultTable{
			Title:   tb.Title,
			Columns: append([]string(nil), tb.Headers...),
		}
		for _, row := range tb.Cells {
			cells := make([]Cell, len(row))
			for j, c := range row {
				cells[j] = Cell{Text: c.Text, Number: c.Num, IsNumber: c.IsNum}
			}
			rt.Rows = append(rt.Rows, cells)
		}
		out.Tables = append(out.Tables, rt)
	}
	return out
}

// Scalar returns a named headline number.
func (r *Result) Scalar(name string) (float64, error) {
	v, ok := r.Scalars[name]
	if !ok {
		return 0, fmt.Errorf("tensortee: experiment %s has no scalar %q", r.ID, name)
	}
	return v, nil
}

// sortedScalarKeys returns the scalar names in deterministic order.
func (r *Result) sortedScalarKeys() []string {
	keys := make([]string, 0, len(r.Scalars))
	for k := range r.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Text renders the result in the classic report layout (what the CLI
// prints and what the deprecated RunExperiment returns). The table layout
// is stats.Table's — cells round-trip as their rendered text, so the
// output stays byte-identical to the internal Report rendering (pinned by
// TestResultTextMatchesReport).
func (r *Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		st := stats.NewTable(t.Title, t.Columns...)
		for _, row := range t.Rows {
			cells := make([]any, len(row))
			for i, c := range row {
				cells[i] = c.Text
			}
			st.AddRow(cells...)
		}
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	for _, k := range r.sortedScalarKeys() {
		fmt.Fprintf(&b, "%s = %.4g\n", k, r.Scalars[k])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the result as indented JSON. Numeric cells are emitted as
// JSON numbers, so downstream tooling gets typed data.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fingerprint returns a stable hex content hash of the result's data —
// tables, scalars, notes, id and title, but not Elapsed (which varies run
// to run while the simulated numbers stay byte-identical). Two runs of the
// same experiment on the same code produce the same fingerprint, so it is
// suitable as a strong HTTP ETag and as a golden-output pin.
func (r *Result) Fingerprint() string {
	clone := *r
	clone.Elapsed = 0
	b, err := json.Marshal(&clone)
	if err != nil {
		// Result marshalling cannot fail (all fields are plain data), but
		// degrade to a distinguishable fingerprint rather than panicking.
		b = []byte("unmarshalable:" + r.ID + ":" + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// CSV renders every table as a CSV block (a "table" header line, the
// column row, then data rows — numeric cells at full precision) followed
// by one "scalar,<name>,<value>" line per headline number.
func (r *Result) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, t := range r.Tables {
		_ = w.Write([]string{"table", t.Title})
		_ = w.Write(t.Columns)
		for _, row := range t.Rows {
			rec := make([]string, len(row))
			for i, c := range row {
				if c.IsNumber {
					rec[i] = strconv.FormatFloat(c.Number, 'g', -1, 64)
				} else {
					rec[i] = c.Text
				}
			}
			_ = w.Write(rec)
		}
	}
	for _, k := range r.sortedScalarKeys() {
		_ = w.Write([]string{"scalar", k, strconv.FormatFloat(r.Scalars[k], 'g', -1, 64)})
	}
	w.Flush()
	return b.String()
}
