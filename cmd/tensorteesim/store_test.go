package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stripElapsed drops the "[id regenerated in X]" trailer lines, the only
// run-to-run varying part of the text output.
func stripElapsed(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, "regenerated in") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestExpStoreDirReusesResults pins the CLI cold-start path: the first
// invocation computes fig15 and persists it under -store-dir; a second
// process over the same directory serves the identical table from disk
// (observable as an instant, zero-elapsed regeneration).
func TestExpStoreDirReusesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates systems")
	}
	dir := t.TempDir()

	code, out1, stderr := runCLI(t, "-exp", "fig15", "-store-dir", dir)
	if code != 0 {
		t.Fatalf("first run exit = %d (stderr: %s)", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "result", "fig15.tte")); err != nil {
		t.Fatalf("result not persisted: %v", err)
	}

	code, out2, stderr := runCLI(t, "-exp", "fig15", "-store-dir", dir)
	if code != 0 {
		t.Fatalf("second run exit = %d (stderr: %s)", code, stderr)
	}
	if stripElapsed(out2) != stripElapsed(out1) {
		t.Errorf("stored result renders differently:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	// A stored result carries zero Elapsed — the tell that nothing was
	// simulated on the second run.
	if !strings.Contains(out2, "[fig15 regenerated in 0s]") {
		t.Errorf("second run does not look disk-served:\n%s", out2)
	}

	// Calibration snapshots persisted too.
	entries, err := filepath.Glob(filepath.Join(dir, "calib", "*.tte"))
	if err != nil || len(entries) == 0 {
		t.Errorf("no calibration snapshots persisted (err=%v)", err)
	}
}

func TestStoreDirOpenFailure(t *testing.T) {
	// A store path that collides with an existing file cannot be created.
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-exp", "fig15", "-store-dir", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "opening store") {
		t.Errorf("store error not reported: %s", stderr)
	}
}
