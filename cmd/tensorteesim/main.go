// Command tensorteesim regenerates the tables and figures of the TensorTEE
// paper's evaluation (Section 6) from the simulators in this repository.
//
// Usage:
//
//	tensorteesim -list                      list experiment ids
//	tensorteesim -exp fig16                 regenerate one experiment
//	tensorteesim -exp all                   regenerate everything
//	tensorteesim -exp all -parallel 4       ... on 4 workers, shared calibration
//	tensorteesim -exp all -store-dir DIR    ... persisting (and reusing) results on disk
//	tensorteesim -exp fig16 -json           emit typed JSON
//	tensorteesim -scenario spec.json        run a declarative custom scenario
//	tensorteesim -scenario -                ... reading the spec from stdin
//	tensorteesim -campaign spec.json        run a multi-axis campaign to completion
//	tensorteesim -campaign - -store-dir DIR ... checkpointed: rerun resumes, not recomputes
//	tensorteesim -step GPT2-M               simulate one training step on all systems
//	tensorteesim -models                    list workload models
//
// A scenario spec names a workload model (zoo name or custom dims), a set
// of systems with Table-1 overrides, a metric set, and an optional sweep
// axis — see the "Custom scenarios" section of EXPERIMENTS.md and
// examples/scenario for the JSON shape.
//
// A campaign spec is a base scenario plus axes to cross (see the
// "Campaigns" section of EXPERIMENTS.md). -campaign runs the whole grid
// on -parallel workers, streams per-point progress to stderr, prints the
// final status as JSON on stdout, and exits 1 if any point failed. With
// -store-dir each completed point checkpoints to disk, so an interrupted
// run picks up where it left off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"tensortee"
	"tensortee/internal/campaign"
	"tensortee/internal/faultinject"
	"tensortee/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of main: parse args, dispatch, and return the
// process exit code. All I/O goes through stdin/stdout/stderr so tests
// can drive it.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tensorteesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiment ids and exit")
	exp := fs.String("exp", "", "experiment id to regenerate (or 'all')")
	scenarioPath := fs.String("scenario", "", "run a custom scenario from a JSON spec file ('-' = stdin)")
	campaignPath := fs.String("campaign", "", "run a multi-axis campaign from a JSON spec file ('-' = stdin)")
	step := fs.String("step", "", "simulate one training step for the named model")
	models := fs.Bool("models", false, "list workload models and exit")
	jsonOut := fs.Bool("json", false, "emit experiment results as JSON")
	parallel := fs.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	storeDir := fs.String("store-dir", "", "persist results and calibrations in this directory; reuse anything already there")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := []tensortee.RunnerOption{
		tensortee.WithParallelism(*parallel),
		tensortee.WithCalibrationCache(true),
	}
	if *storeDir != "" {
		// Same chaos hook as tensorteed: a fault plan in TENSORTEE_FAULTS
		// injects deterministic store failures (testing only).
		faults, err := faultinject.FromEnv()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", faultinject.EnvVar, err)
			return 2
		}
		if faults.Enabled() {
			fmt.Fprintf(stderr, "WARNING: %s=%q — injecting store faults; NEVER set this in production\n",
				faultinject.EnvVar, faults.String())
		}
		st, err := store.Open(*storeDir, store.Options{Faults: faults})
		if err != nil {
			fmt.Fprintf(stderr, "opening store: %v\n", err)
			return 1
		}
		opts = append(opts, tensortee.WithStore(st))
	}
	runner := tensortee.NewRunner(opts...)

	switch {
	case *list:
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range tensortee.Experiments() {
			fmt.Fprintf(stdout, "  %-6s %-13s %s\n", e.ID, e.Artifact, e.About)
		}
	case *models:
		for _, name := range tensortee.ModelNames() {
			m, _ := tensortee.Model(name)
			fmt.Fprintf(stdout, "%-12s %-6s batch=%-3d layers=%-3d hidden=%-5d tensors=%d\n",
				m.Name, m.ParamsLabel, m.BatchSize, m.Layers, m.Hidden, m.TensorCount)
		}
	case *exp == "all":
		start := time.Now()
		results, err := runAllResults(ctx, runner, stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *jsonOut {
			// One JSON document (an array), not a concatenated stream.
			out, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			stdout.Write(append(out, '\n'))
		} else {
			for _, res := range results {
				if err := emit(stdout, stderr, res, false); err != nil {
					return 1
				}
			}
		}
		fmt.Fprintf(stderr, "[%d experiments regenerated in %v, parallelism %d]\n",
			len(results), time.Since(start).Round(time.Millisecond), *parallel)
	case *exp != "":
		// With a store attached, Cached consults disk (and peers) before
		// computing and persists whatever it does compute; without one it
		// degenerates to a plain run.
		res, err := runner.Cached(ctx, *exp)
		if err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("experiment %s: %w", *exp, err))
			return 1
		}
		if err := emit(stdout, stderr, res, *jsonOut); err != nil {
			return 1
		}
	case *scenarioPath != "":
		res, err := runScenario(ctx, runner, *scenarioPath, stdin)
		if err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("scenario: %w", err))
			return 1
		}
		if err := emit(stdout, stderr, res, *jsonOut); err != nil {
			return 1
		}
	case *campaignPath != "":
		code, err := runCampaign(ctx, runner, *campaignPath, stdin, stdout, stderr, *parallel)
		if err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("campaign: %w", err))
			return 1
		}
		return code
	case *step != "":
		if err := runStep(stdout, *step); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// runAllResults regenerates every experiment. Without a store this is a
// plain RunAll; with one, the warm pass serves whatever is already on
// disk and a summary of the warmed/computed split goes to stderr.
func runAllResults(ctx context.Context, runner *tensortee.Runner, stderr io.Writer) ([]*tensortee.Result, error) {
	if runner.Store() == nil {
		return runner.RunAll(ctx)
	}
	fromStore, computed, err := runner.WarmAll(ctx)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "[store: %d warmed from disk, %d computed]\n", fromStore, computed)
	ids := tensortee.ExperimentIDs()
	results := make([]*tensortee.Result, len(ids))
	for i, id := range ids {
		if results[i], err = runner.Cached(ctx, id); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func emit(stdout, stderr io.Writer, res *tensortee.Result, jsonOut bool) error {
	if jsonOut {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return err
		}
		stdout.Write(append(out, '\n'))
		return nil
	}
	fmt.Fprint(stdout, res.Text())
	fmt.Fprintf(stdout, "[%s regenerated in %v]\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
	return nil
}

// runScenario decodes a spec from the file (or stdin with "-") and runs
// it through the shared Runner, so registry experiments and scenarios in
// one invocation share calibrated systems.
func runScenario(ctx context.Context, runner *tensortee.Runner, path string, stdin io.Reader) (*tensortee.Result, error) {
	src := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	var spec tensortee.Scenario
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding spec: %w", err)
	}
	return runner.RunScenario(ctx, spec)
}

// runCampaign decodes a campaign spec (base scenario + axes), runs the
// whole grid through an in-process campaign manager sharing the Runner's
// calibration cache and store, streams per-point progress to stderr, and
// prints the final status as JSON on stdout. The returned exit code is 1
// when any point failed or the run was interrupted. Ctrl-C cancels:
// in-flight points drain and checkpoint, the rest are skipped, and with
// -store-dir a rerun resumes from the checkpoints.
func runCampaign(ctx context.Context, runner *tensortee.Runner, path string, stdin io.Reader, stdout, stderr io.Writer, parallel int) (int, error) {
	src := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		src = f
	}
	var spec campaign.Spec
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return 1, fmt.Errorf("decoding spec: %w", err)
	}
	mgr := campaign.NewManager(campaign.Config{
		Run: func(ctx context.Context, s tensortee.Scenario) ([]byte, error) {
			res, _, err := runner.RunScenarioCached(ctx, s)
			if err != nil {
				return nil, err
			}
			return res.EncodeStored()
		},
		Measure: func(payload []byte) (campaign.Measurement, error) {
			sp, total, err := tensortee.StoredMeasurement(payload)
			if err != nil {
				return campaign.Measurement{}, err
			}
			return campaign.Measurement{Speedup: sp, TotalSeconds: total}, nil
		},
		Store:   runner.Store(),
		Workers: parallel,
		Retries: 1,
	})
	defer mgr.Shutdown(context.Background())

	st, _, err := mgr.Start(spec)
	if err != nil {
		return 1, err
	}
	ch, detach, err := mgr.Subscribe(st.ID)
	if err != nil {
		return 1, err
	}
	defer detach()
	if s := spec.Search; s != nil {
		fmt.Fprintf(stderr, "[campaign %s: %s search over a %d-point domain, %d restored from store]\n", st.ID, s.Mode, st.Total, st.Restored)
	} else {
		fmt.Fprintf(stderr, "[campaign %s: %d points, %d restored from store]\n", st.ID, st.Total, st.Restored)
	}

	interrupted := false
	for {
		select {
		case <-ctx.Done():
			if !interrupted {
				interrupted = true
				fmt.Fprintln(stderr, "[interrupt: draining in-flight points...]")
				if _, err := mgr.Cancel(st.ID); err != nil {
					return 1, err
				}
			}
			ctx = context.Background() // keep draining the event stream
		case ev, open := <-ch:
			if !open {
				final, ok := mgr.Status(st.ID)
				if !ok {
					return 1, fmt.Errorf("campaign %s vanished", st.ID)
				}
				out, err := json.MarshalIndent(final, "", "  ")
				if err != nil {
					return 1, err
				}
				stdout.Write(append(out, '\n'))
				if final.Failed > 0 || final.State == campaign.StateCancelled {
					return 1, nil
				}
				return 0, nil
			}
			if ev.Type == campaign.EventPoint {
				line := fmt.Sprintf("[%d/%d %s %s]", ev.Done, ev.Total, ev.State, ev.Point)
				if ev.Error != "" {
					line += " " + ev.Error
				}
				if b := ev.BestSoFar; b != nil {
					line += fmt.Sprintf(" best=%s (objective=%.4g cost=%g)", b.Point, b.Objective, b.Cost)
				}
				fmt.Fprintln(stderr, line)
			}
		}
	}
}

func runStep(stdout io.Writer, model string) error {
	fmt.Fprintf(stdout, "one ZeRO-Offload training step of %s:\n\n", model)
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			return err
		}
		b, err := sys.TrainStep(model)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s total=%-10v npu=%v cpu=%v commW=%v commG=%v\n",
			kind, b.Total.Round(time.Millisecond),
			b.NPU.Round(time.Millisecond), b.CPU.Round(time.Millisecond),
			b.CommWeights.Round(time.Millisecond), b.CommGrads.Round(time.Millisecond))
	}
	return nil
}
