// Command tensorteesim regenerates the tables and figures of the TensorTEE
// paper's evaluation (Section 6) from the simulators in this repository.
//
// Usage:
//
//	tensorteesim -list              list experiment ids
//	tensorteesim -exp fig16         regenerate one experiment
//	tensorteesim -exp all           regenerate everything (slow)
//	tensorteesim -step GPT2-M       simulate one training step on all systems
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tensortee"
	"tensortee/internal/experiments"
)

var jsonOut = flag.Bool("json", false, "emit experiment results as JSON")

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to regenerate (or 'all')")
	step := flag.String("step", "", "simulate one training step for the named model")
	models := flag.Bool("models", false, "list workload models and exit")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
	case *models:
		for _, name := range tensortee.ModelNames() {
			m, _ := tensortee.Model(name)
			fmt.Printf("%-12s %-6s batch=%-3d layers=%-3d hidden=%-5d tensors=%d\n",
				m.Name, m.ParamsLabel, m.BatchSize, m.Layers, m.Hidden, m.TensorCount)
		}
	case *exp == "all":
		for _, e := range experiments.Registry() {
			runOne(e.ID)
		}
	case *exp != "":
		runOne(*exp)
	case *step != "":
		runStep(*step)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string) {
	start := time.Now()
	if *jsonOut {
		rep, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	out, err := tensortee.RunExperiment(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Print(out)
	fmt.Printf("[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
}

func runStep(model string) {
	fmt.Printf("one ZeRO-Offload training step of %s:\n\n", model)
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := sys.TrainStep(model)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s total=%-10v npu=%v cpu=%v commW=%v commG=%v\n",
			kind, b.Total.Round(time.Millisecond),
			b.NPU.Round(time.Millisecond), b.CPU.Round(time.Millisecond),
			b.CommWeights.Round(time.Millisecond), b.CommGrads.Round(time.Millisecond))
	}
	_ = strings.TrimSpace
}
