// Command tensorteesim regenerates the tables and figures of the TensorTEE
// paper's evaluation (Section 6) from the simulators in this repository.
//
// Usage:
//
//	tensorteesim -list                      list experiment ids
//	tensorteesim -exp fig16                 regenerate one experiment
//	tensorteesim -exp all                   regenerate everything
//	tensorteesim -exp all -parallel 4       ... on 4 workers, shared calibration
//	tensorteesim -exp fig16 -json           emit typed JSON
//	tensorteesim -step GPT2-M               simulate one training step on all systems
//	tensorteesim -models                    list workload models
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"tensortee"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "", "experiment id to regenerate (or 'all')")
	step := flag.String("step", "", "simulate one training step for the named model")
	models := flag.Bool("models", false, "list workload models and exit")
	jsonOut := flag.Bool("json", false, "emit experiment results as JSON")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := tensortee.NewRunner(
		tensortee.WithParallelism(*parallel),
		tensortee.WithCalibrationCache(true),
	)

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, id := range tensortee.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
	case *models:
		for _, name := range tensortee.ModelNames() {
			m, _ := tensortee.Model(name)
			fmt.Printf("%-12s %-6s batch=%-3d layers=%-3d hidden=%-5d tensors=%d\n",
				m.Name, m.ParamsLabel, m.BatchSize, m.Layers, m.Hidden, m.TensorCount)
		}
	case *exp == "all":
		start := time.Now()
		results, err := runner.RunAll(ctx)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			// One JSON document (an array), not a concatenated stream.
			out, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(append(out, '\n'))
		} else {
			for _, res := range results {
				emit(res, false)
			}
		}
		fmt.Fprintf(os.Stderr, "[%d experiments regenerated in %v, parallelism %d]\n",
			len(results), time.Since(start).Round(time.Millisecond), *parallel)
	case *exp != "":
		res, err := runner.Run(ctx, *exp)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", *exp, err))
		}
		emit(res, *jsonOut)
	case *step != "":
		runStep(*step)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(res *tensortee.Result, jsonOut bool) {
	if jsonOut {
		out, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(out, '\n'))
		return
	}
	fmt.Print(res.Text())
	fmt.Printf("[%s regenerated in %v]\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
}

func runStep(model string) {
	fmt.Printf("one ZeRO-Offload training step of %s:\n\n", model)
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			fatal(err)
		}
		b, err := sys.TrainStep(model)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s total=%-10v npu=%v cpu=%v commW=%v commG=%v\n",
			kind, b.Total.Round(time.Millisecond),
			b.NPU.Round(time.Millisecond), b.CPU.Round(time.Millisecond),
			b.CommWeights.Round(time.Millisecond), b.CommGrads.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
