package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tensortee"
)

// runCLI invokes run with captured output and an empty stdin.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	return runCLIStdin(t, "", args...)
}

// runCLIStdin invokes run with captured output and the given stdin.
func runCLIStdin(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(context.Background(), args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListShowsIndexMetadata(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, e := range tensortee.Experiments() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("-list missing id %s", e.ID)
		}
		if !strings.Contains(out, e.Artifact) {
			t.Errorf("-list missing artifact %q for %s", e.Artifact, e.ID)
		}
	}
}

func TestModels(t *testing.T) {
	code, out, _ := runCLI(t, "-models")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "GPT2-M") || !strings.Contains(out, "LLAMA2-7B") {
		t.Errorf("-models output incomplete:\n%s", out)
	}
}

func TestExpFig16JSON(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates systems")
	}
	code, out, stderr := runCLI(t, "-exp", "fig16", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var res struct {
		ID      string `json:"id"`
		Tables  []any  `json:"tables"`
		Scalars map[string]float64
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if res.ID != "fig16" {
		t.Errorf("id = %q, want fig16", res.ID)
	}
	if len(res.Tables) == 0 {
		t.Error("no tables in JSON output")
	}
	if res.Scalars["avg_speedup"] <= 1 {
		t.Errorf("avg_speedup = %g, want > 1", res.Scalars["avg_speedup"])
	}
}

func TestExpAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if raceEnabled {
		t.Skip("full sweep is too slow under the race detector (same gating as the root registry sweep)")
	}
	code, out, stderr := runCLI(t, "-exp", "all", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	for _, id := range tensortee.ExperimentIDs() {
		if !strings.Contains(out, "=== "+id+":") {
			t.Errorf("-exp all output missing %s", id)
		}
	}
	if !strings.Contains(stderr, "14 experiments regenerated") {
		t.Errorf("summary line missing from stderr: %s", stderr)
	}
}

// cliSpec is a cheap scenario (one mode-off calibration).
const cliSpec = `{
  "name": "cli-smoke",
  "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
  "systems": [{"kind": "non-secure"}],
  "metrics": ["total", "npu"]
}`

func TestScenarioFromFile(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario calibrates a system")
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(cliSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(out, "=== scenario:cli-smoke:") {
		t.Errorf("output missing scenario header:\n%s", out)
	}
	if !strings.Contains(out, "total (s)") || !strings.Contains(out, "npu (s)") {
		t.Errorf("output missing metric columns:\n%s", out)
	}
}

func TestScenarioFromStdinJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario calibrates a system")
	}
	code, out, stderr := runCLIStdin(t, cliSpec, "-scenario", "-", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var res struct {
		ID     string `json:"id"`
		Tables []any  `json:"tables"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if res.ID != "scenario:cli-smoke" || len(res.Tables) != 1 {
		t.Errorf("decoded result = %+v", res)
	}
}

func TestScenarioErrors(t *testing.T) {
	// Unknown model: rejected before any simulation, named in the error.
	code, _, stderr := runCLIStdin(t,
		`{"model": {"name": "GPT-9000"}, "systems": [{"kind": "tensortee"}]}`,
		"-scenario", "-")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown model") || !strings.Contains(stderr, "GPT-9000") {
		t.Errorf("error does not name the unknown model: %s", stderr)
	}
	// Malformed JSON.
	code, _, stderr = runCLIStdin(t, `{"model":`, "-scenario", "-")
	if code != 1 || !strings.Contains(stderr, "decoding spec") {
		t.Errorf("malformed spec: exit = %d, stderr = %s", code, stderr)
	}
	// Missing file.
	code, _, stderr = runCLI(t, "-scenario", filepath.Join(t.TempDir(), "nope.json"))
	if code != 1 || !strings.Contains(stderr, "nope.json") {
		t.Errorf("missing file: exit = %d, stderr = %s", code, stderr)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "bogus")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown experiment") || !strings.Contains(stderr, "bogus") {
		t.Errorf("error message does not name the unknown experiment: %s", stderr)
	}
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-exp") {
		t.Errorf("usage not printed: %s", stderr)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runCLI(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
