package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"tensortee/internal/campaign"
)

// cliCampaign crosses the cheap custom model over a three-value layers
// axis (one shared mode-off calibration, three fast points).
const cliCampaign = `{
  "name": "cli-campaign",
  "base": ` + cliSpec + `,
  "axes": [{"axis": "layers", "values": [1, 2, 3]}]
}`

func TestCampaignFromStdinRunsGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign calibrates a system")
	}
	code, out, stderr := runCLIStdin(t, cliCampaign, "-campaign", "-")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	var st campaign.Status
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("stdout is not a campaign status: %v\n%s", err, out)
	}
	if st.State != campaign.StateDone || st.Computed != 3 || st.Failed != 0 {
		t.Errorf("final status = %+v, want 3 computed, done", st)
	}
	// Per-point progress goes to stderr, machine output to stdout.
	if !strings.Contains(stderr, "3 points") {
		t.Errorf("stderr missing campaign header: %s", stderr)
	}
}

func TestCampaignResumesFromStore(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign calibrates a system")
	}
	dir := t.TempDir()
	if code, _, stderr := runCLIStdin(t, cliCampaign, "-campaign", "-", "-store-dir", dir); code != 0 {
		t.Fatalf("first run: exit = %d (stderr: %s)", code, stderr)
	}
	code, out, stderr := runCLIStdin(t, cliCampaign, "-campaign", "-", "-store-dir", dir)
	if code != 0 {
		t.Fatalf("second run: exit = %d (stderr: %s)", code, stderr)
	}
	var st campaign.Status
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatal(err)
	}
	if st.Restored != 3 || st.Computed != 0 {
		t.Errorf("second run = %d restored / %d computed, want 3 / 0", st.Restored, st.Computed)
	}
}

func TestCampaignErrors(t *testing.T) {
	// Invalid axis: rejected before any simulation.
	code, _, stderr := runCLIStdin(t,
		`{"base": `+cliSpec+`, "axes": [{"axis": "warp", "values": [1]}]}`,
		"-campaign", "-")
	if code != 1 || !strings.Contains(stderr, "unknown axis") {
		t.Errorf("unknown axis: exit = %d, stderr = %s", code, stderr)
	}
	// Malformed JSON.
	code, _, stderr = runCLIStdin(t, `{"base":`, "-campaign", "-")
	if code != 1 || !strings.Contains(stderr, "decoding spec") {
		t.Errorf("malformed spec: exit = %d, stderr = %s", code, stderr)
	}
	// Missing file.
	code, _, stderr = runCLI(t, "-campaign", filepath.Join(t.TempDir(), "nope.json"))
	if code != 1 || !strings.Contains(stderr, "nope.json") {
		t.Errorf("missing file: exit = %d, stderr = %s", code, stderr)
	}
}
