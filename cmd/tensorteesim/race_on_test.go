//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; the
// heaviest integration tests skip under it, mirroring the root package's
// registry-sweep gating.
const raceEnabled = true
