package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tensortee
cpu: some cpu
BenchmarkFig16Overall          	       1	 944441356 ns/op	         4.208 avg_speedup	31102176 B/op	   51782 allocs/op
BenchmarkFig16Overall          	       1	 954500051 ns/op	         4.208 avg_speedup	31139272 B/op	   51790 allocs/op
BenchmarkAdamIterationTensor-8 	      75	  15913713 ns/op	        69.38 ns/access	   12302 B/op	      38 allocs/op
PASS
ok  	tensortee	12.345s
`

func TestParseBench(t *testing.T) {
	results := parseBench(strings.NewReader(sampleOutput))
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFig16Overall" || r.Iterations != 1 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 944441356 || r.Metrics["avg_speedup"] != 4.208 || r.Metrics["allocs/op"] != 51782 {
		t.Errorf("metrics = %+v", r.Metrics)
	}
	if results[2].Name != "BenchmarkAdamIterationTensor-8" || results[2].Metrics["ns/access"] != 69.38 {
		t.Errorf("third result = %+v", results[2])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench(strings.NewReader("PASS\nok x 1s\n?   pkg [no test files]\n")); len(got) != 0 {
		t.Errorf("parsed noise: %+v", got)
	}
}

// TestRunEmitsDatedJSON drives run() end to end against the real go
// toolchain, but scoped to this tiny package's own benchmark so it
// finishes in milliseconds.
func TestRunEmitsDatedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	now := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	code := run([]string{"-bench", "BenchmarkParseSelf", "-count", "1", "-benchtime", "1x", "-out", out, "./"},
		&stdout, &stderr, now)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Date != "2026-07-28" || len(rep.Results) != 1 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.HasPrefix(rep.Results[0].Name, "BenchmarkParseSelf") {
		t.Errorf("result name = %q", rep.Results[0].Name)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such"}, &stdout, &stderr, time.Now()); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// BenchmarkParseSelf keeps the end-to-end test self-contained: run()
// needs some benchmark to execute, and parsing the sample output is as
// good a microbench as any.
func BenchmarkParseSelf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parseBench(strings.NewReader(sampleOutput))
	}
}
