package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tensortee
cpu: some cpu
BenchmarkFig16Overall          	       1	 944441356 ns/op	         4.208 avg_speedup	31102176 B/op	   51782 allocs/op
BenchmarkFig16Overall          	       1	 954500051 ns/op	         4.208 avg_speedup	31139272 B/op	   51790 allocs/op
BenchmarkAdamIterationTensor-8 	      75	  15913713 ns/op	        69.38 ns/access	   12302 B/op	      38 allocs/op
PASS
ok  	tensortee	12.345s
`

func TestParseBench(t *testing.T) {
	results := parseBench(strings.NewReader(sampleOutput))
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFig16Overall" || r.Iterations != 1 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 944441356 || r.Metrics["avg_speedup"] != 4.208 || r.Metrics["allocs/op"] != 51782 {
		t.Errorf("metrics = %+v", r.Metrics)
	}
	if results[2].Name != "BenchmarkAdamIterationTensor-8" || results[2].Metrics["ns/access"] != 69.38 {
		t.Errorf("third result = %+v", results[2])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := parseBench(strings.NewReader("PASS\nok x 1s\n?   pkg [no test files]\n")); len(got) != 0 {
		t.Errorf("parsed noise: %+v", got)
	}
}

// TestRunEmitsDatedJSON drives run() end to end against the real go
// toolchain, but scoped to this tiny package's own benchmark so it
// finishes in milliseconds.
func TestRunEmitsDatedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	now := time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC)
	code := run([]string{"-bench", "BenchmarkParseSelf", "-count", "1", "-benchtime", "1x", "-out", out, "./"},
		&stdout, &stderr, now)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Date != "2026-07-28" || len(rep.Results) != 1 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.HasPrefix(rep.Results[0].Name, "BenchmarkParseSelf") {
		t.Errorf("result name = %q", rep.Results[0].Name)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such"}, &stdout, &stderr, time.Now()); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// writeSnapshot dumps a minimal report for the compare tests.
func writeSnapshot(t *testing.T, path string, results []BenchResult) {
	t.Helper()
	data, err := json.Marshal(Report{Date: "2026-07-28", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareDeltaTableAndThreshold drives the -compare mode end to end:
// the delta table must cover wall time, allocations, and custom scalar
// metrics; a regression past -threshold exits 3; an improvement or an
// in-bounds wobble exits 0; custom scalars never trip the threshold.
func TestCompareDeltaTableAndThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	writeSnapshot(t, oldPath, []BenchResult{
		{Name: "BenchmarkFig16-8", Iterations: 1, Metrics: map[string]float64{
			"ns/op": 1000, "allocs/op": 100, "avg_speedup": 4.0}},
		{Name: "BenchmarkFig16-8", Iterations: 1, Metrics: map[string]float64{
			"ns/op": 1200, "allocs/op": 100, "avg_speedup": 4.0}}, // -count repeat: averaged
		{Name: "BenchmarkOnlyOld-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}},
	})

	// Improvement in wall, regression only in a custom scalar: exit 0.
	writeSnapshot(t, newPath, []BenchResult{
		{Name: "BenchmarkFig16-8", Iterations: 1, Metrics: map[string]float64{
			"ns/op": 700, "allocs/op": 100, "avg_speedup": 9.9}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "-threshold", "0.25", oldPath, newPath}, &stdout, &stderr, time.Now()); code != 0 {
		t.Fatalf("improvement exit = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, frag := range []string{"BenchmarkFig16-8", "ns/op", "allocs/op", "avg_speedup", "-36.4%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("delta table missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "BenchmarkOnlyOld") {
		t.Error("benchmarks absent from the new snapshot should not be compared")
	}

	// Wall-time regression past the threshold: exit 3.
	writeSnapshot(t, newPath, []BenchResult{
		{Name: "BenchmarkFig16-8", Iterations: 1, Metrics: map[string]float64{
			"ns/op": 2000, "allocs/op": 100}},
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", "-threshold", "0.25", oldPath, newPath}, &stdout, &stderr, time.Now()); code != 3 {
		t.Fatalf("regression exit = %d, want 3", code)
	}
	if !strings.Contains(stderr.String(), "ns/op") {
		t.Errorf("regression report missing metric: %s", stderr.String())
	}

	// Same regression without a threshold: informational, exit 0.
	stdout.Reset()
	if code := run([]string{"-compare", oldPath, newPath}, &stdout, &stderr, time.Now()); code != 0 {
		t.Fatalf("thresholdless compare exit = %d, want 0", code)
	}
}

// TestCompareZeroBaselineRegression pins that growth from a zero
// baseline counts as an unbounded regression rather than slipping
// through as NaN.
func TestCompareZeroBaselineRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	writeSnapshot(t, oldPath, []BenchResult{
		{Name: "BenchmarkX-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
	})
	writeSnapshot(t, newPath, []BenchResult{
		{Name: "BenchmarkX-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 5000}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "-threshold", "0.25", oldPath, newPath}, &stdout, &stderr, time.Now()); code != 3 {
		t.Fatalf("zero-baseline regression exit = %d, want 3 (stderr: %s)", code, stderr.String())
	}
}

// TestCompareNoCommonBenchmarks pins that a vacuous comparison fails
// loudly instead of passing as a silent no-op.
func TestCompareNoCommonBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	writeSnapshot(t, oldPath, []BenchResult{
		{Name: "BenchmarkRenamed-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
	})
	writeSnapshot(t, newPath, []BenchResult{
		{Name: "BenchmarkOther-8", Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", oldPath, newPath}, &stdout, &stderr, time.Now()); code != 1 {
		t.Fatalf("disjoint snapshots exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no benchmark names") {
		t.Errorf("missing diagnostic: %s", stderr.String())
	}
}

// TestCompareArgValidation pins the usage errors.
func TestCompareArgValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "one.json"}, &stdout, &stderr, time.Now()); code != 2 {
		t.Fatalf("one-arg exit = %d, want 2", code)
	}
	if code := run([]string{"-compare", "missing-a.json", "missing-b.json"}, &stdout, &stderr, time.Now()); code != 1 {
		t.Fatalf("missing-file exit = %d, want 1", code)
	}
}

// BenchmarkParseSelf keeps the end-to-end test self-contained: run()
// needs some benchmark to execute, and parsing the sample output is as
// good a microbench as any.
func BenchmarkParseSelf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parseBench(strings.NewReader(sampleOutput))
	}
}
