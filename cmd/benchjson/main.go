// Command benchjson runs the repo's benchmark suite and records the
// results as a dated JSON file, so before/after comparisons of the
// simulator fast paths live in version control instead of scrollback.
//
// Usage:
//
//	benchjson                          # go test -bench . -benchmem -count 3 .
//	benchjson -bench 'Fig16|Fig19'     # subset
//	benchjson -count 5 -out BENCH.json
//	benchjson -benchtime 1x ./...      # one iteration per benchmark, all packages
//
// The output file (default BENCH_<yyyy-mm-dd>.json) carries one entry
// per benchmark line with every metric Go printed — ns/op, B/op,
// allocs/op, and the custom experiment metrics (ns/access, avg_speedup,
// ...) the benches report.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed benchmark output line.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Command   string        `json:"command"`
	Results   []BenchResult `json:"results"`
}

// parseBench extracts benchmark lines from `go test -bench` output:
//
//	BenchmarkFig16Overall-8   1   944441356 ns/op   4.208 avg_speedup   31102176 B/op   51782 allocs/op
//
// Lines that do not start with "Benchmark" (build noise, PASS, ok) are
// ignored; malformed value/unit pairs skip the pair, not the line.
func parseBench(r io.Reader) []BenchResult {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out
}

func run(args []string, stdout, stderr io.Writer, now time.Time) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", ".", "benchmark regex passed to go test -bench")
	count := fs.Int("count", 3, "go test -count")
	benchtime := fs.String("benchtime", "", "go test -benchtime (empty = default)")
	outPath := fs.String("out", "", "output file (default BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkg := "."
	if fs.NArg() > 0 {
		pkg = fs.Arg(0)
	}
	if *outPath == "" {
		*outPath = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, pkg)

	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(stderr, "benchjson: starting go test: %v\n", err)
		return 1
	}
	// Tee: the operator still sees live benchmark output.
	results := parseBench(io.TeeReader(pipe, stdout))
	if err := cmd.Wait(); err != nil {
		fmt.Fprintf(stderr, "benchjson: go test: %v\n", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		return 1
	}

	rep := Report{
		Date:      now.Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Command:   "go " + strings.Join(goArgs, " "),
		Results:   results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", *outPath, len(results))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, time.Now()))
}
