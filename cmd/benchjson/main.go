// Command benchjson runs the repo's benchmark suite and records the
// results as a dated JSON file, so before/after comparisons of the
// simulator fast paths live in version control instead of scrollback.
//
// Usage:
//
//	benchjson                          # go test -bench . -benchmem -count 3 .
//	benchjson -bench 'Fig16|Fig19'     # subset
//	benchjson -count 5 -out BENCH.json
//	benchjson -benchtime 1x ./...      # one iteration per benchmark, all packages
//	benchjson -compare old.json new.json -threshold 0.25
//
// The output file (default BENCH_<yyyy-mm-dd>.json) carries one entry
// per benchmark line with every metric Go printed — ns/op, B/op,
// allocs/op, and the custom experiment metrics (ns/access, avg_speedup,
// ...) the benches report.
//
// Compare mode reads two snapshots and prints a per-benchmark delta
// table over wall time (ns/op), allocations, and every custom scalar
// metric. With -threshold f, a wall-time or allocation REGRESSION beyond
// the fraction f on any benchmark makes benchjson exit 3 — the tripwire
// the CI bench-smoke job uses against the committed snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// BenchResult is one parsed benchmark output line.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Command   string        `json:"command"`
	Results   []BenchResult `json:"results"`
}

// parseBench extracts benchmark lines from `go test -bench` output:
//
//	BenchmarkFig16Overall-8   1   944441356 ns/op   4.208 avg_speedup   31102176 B/op   51782 allocs/op
//
// Lines that do not start with "Benchmark" (build noise, PASS, ok) are
// ignored; malformed value/unit pairs skip the pair, not the line.
func parseBench(r io.Reader) []BenchResult {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out
}

// averageByName folds repeated runs of one benchmark (go test -count)
// into per-metric means, keyed by the benchmark name.
func averageByName(results []BenchResult) map[string]map[string]float64 {
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]int{}
	for _, r := range results {
		if sums[r.Name] == nil {
			sums[r.Name] = map[string]float64{}
			counts[r.Name] = map[string]int{}
		}
		for k, v := range r.Metrics {
			sums[r.Name][k] += v
			counts[r.Name][k]++
		}
	}
	for name, m := range sums {
		for k := range m {
			m[k] /= float64(counts[name][k])
		}
	}
	return sums
}

// loadReport reads one benchjson snapshot.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// regressionMetrics are the "lower is better" metrics the threshold
// applies to; custom experiment scalars are informational (their
// direction is metric-specific).
var regressionMetrics = []string{"ns/op", "allocs/op"}

// compare prints the per-benchmark delta table and reports whether any
// wall-time or allocation regression exceeds threshold (<0 disables),
// plus how many benchmarks the two snapshots share — zero means the
// comparison was vacuous and the caller should fail loudly.
func compare(oldRep, newRep *Report, threshold float64, stdout io.Writer) (regressed []string, compared int) {
	oldAvg := averageByName(oldRep.Results)
	newAvg := averageByName(newRep.Results)
	var names []string
	for name := range newAvg {
		if _, ok := oldAvg[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmetric\told\tnew\tdelta\n")
	for _, name := range names {
		var metrics []string
		for k := range newAvg[name] {
			if _, ok := oldAvg[name][k]; ok {
				metrics = append(metrics, k)
			}
		}
		sort.Strings(metrics)
		for _, k := range metrics {
			ov, nv := oldAvg[name][k], newAvg[name][k]
			// A zero baseline still compares: growth from 0 is an
			// unbounded regression, not an unmeasurable one.
			delta := math.NaN()
			switch {
			case ov != 0:
				delta = (nv - ov) / math.Abs(ov)
			case nv != 0:
				delta = math.Inf(1)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%+.1f%%\n", name, k, ov, nv, delta*100)
			if threshold >= 0 && !math.IsNaN(delta) && delta > threshold {
				for _, rk := range regressionMetrics {
					if k == rk {
						regressed = append(regressed, fmt.Sprintf("%s %s %+.1f%%", name, k, delta*100))
					}
				}
			}
		}
	}
	tw.Flush()
	return regressed, len(names)
}

func run(args []string, stdout, stderr io.Writer, now time.Time) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", ".", "benchmark regex passed to go test -bench")
	count := fs.Int("count", 3, "go test -count")
	benchtime := fs.String("benchtime", "", "go test -benchtime (empty = default)")
	outPath := fs.String("out", "", "output file (default BENCH_<date>.json)")
	doCompare := fs.Bool("compare", false, "compare two snapshots: benchjson -compare old.json new.json")
	threshold := fs.Float64("threshold", -1, "with -compare: exit non-zero when ns/op or allocs/op regress beyond this fraction (e.g. 0.25)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doCompare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchjson: -compare needs exactly two snapshot files")
			return 2
		}
		oldRep, err := loadReport(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		newRep, err := loadReport(fs.Arg(1))
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		regressed, compared := compare(oldRep, newRep, *threshold, stdout)
		if compared == 0 {
			// A vacuous comparison must fail loudly: a renamed benchmark
			// or a drifted -bench filter would otherwise turn the CI
			// tripwire into a silent no-op.
			fmt.Fprintln(stderr, "benchjson: the snapshots share no benchmark names")
			return 1
		}
		if len(regressed) > 0 {
			fmt.Fprintf(stderr, "benchjson: regressions beyond %.0f%%:\n", *threshold*100)
			for _, r := range regressed {
				fmt.Fprintf(stderr, "  %s\n", r)
			}
			return 3
		}
		return 0
	}
	pkg := "."
	if fs.NArg() > 0 {
		pkg = fs.Arg(0)
	}
	if *outPath == "" {
		*outPath = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, pkg)

	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(stderr, "benchjson: starting go test: %v\n", err)
		return 1
	}
	// Tee: the operator still sees live benchmark output.
	results := parseBench(io.TeeReader(pipe, stdout))
	if err := cmd.Wait(); err != nil {
		fmt.Fprintf(stderr, "benchjson: go test: %v\n", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		return 1
	}

	rep := Report{
		Date:      now.Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Command:   "go " + strings.Join(goArgs, " "),
		Results:   results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", *outPath, len(results))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, time.Now()))
}
