package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDaemonStoreFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-peers", "http://localhost:1"}, // -peers without -store-dir
		{"-warm-exit"},                   // -warm-exit without -warm
		{"-peers", "http://localhost:1", "-store-dir", ""},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(context.Background(), args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

func TestDaemonStoreDirEnablesStoreSurface(t *testing.T) {
	dir := t.TempDir()
	base, stop, exit, _ := startDaemon(t, "-store-dir", dir)

	resp, err := http.Get(base + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"enabled": true`) {
		t.Fatalf("/v1/store = %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), dir) {
		t.Errorf("store dir not reported: %s", body)
	}

	// The raw-entry surface 404s cleanly on entries that do not exist yet.
	resp, err = http.Get(base + "/v1/store/result/fig15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty store entry = %d, want 404", resp.StatusCode)
	}

	stop()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit = %d", code)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not exit")
	}
}

// TestDaemonWarmFromStoreSkipsRecompute pins the cold-start contract end
// to end on one cheap experiment: a first daemon computes and persists
// fig15, and a second daemon over the same -store-dir serves it from
// disk without recomputing (observable both in /metrics and in the
// response time).
func TestDaemonWarmFromStoreSkipsRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("computes an experiment")
	}
	dir := t.TempDir()

	base1, stop1, exit1, _ := startDaemon(t, "-store-dir", dir)
	resp, err := http.Get(base1 + "/v1/experiments/fig15?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first serve = %d", resp.StatusCode)
	}
	stop1()
	<-exit1

	base2, stop2, exit2, _ := startDaemon(t, "-store-dir", dir)
	defer stop2()
	start := time.Now()
	resp, err = http.Get(base2 + "/v1/experiments/fig15?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart serve = %d", resp.StatusCode)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("restarted daemon served different bytes")
	}
	// A disk hit is a read + decode, not a simulation: well under a
	// second even on a loaded CI box (computing fig15 calibrates a
	// system, which alone takes longer).
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("restart serve took %v; looks like a recompute", elapsed)
	}
	resp, err = http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(metrics), `tensorteed_experiment_runs_total{id="fig15"}`) {
		t.Errorf("restart recomputed fig15:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "tensorteed_experiment_store_serves_total 1") {
		t.Errorf("store serve not counted:\n%s", metrics)
	}
	stop2()
	<-exit2
}
