// Command tensorteed serves the TensorTEE paper's experiments over HTTP.
// Results are computed on first request, memoized in memory (calibrated
// systems and finished Results are both cached), and served with strong
// ETags so clients can revalidate cheaply.
//
// Usage:
//
//	tensorteed                         serve on :8344
//	tensorteed -addr :9000             custom listen address
//	tensorteed -parallel 4             worker pool inside the Runner
//	tensorteed -max-concurrent 2       bound concurrent cold computations
//	tensorteed -max-scenarios 2        bound concurrent scenario computations
//	tensorteed -warm                   compute every experiment at startup
//	tensorteed -pprof localhost:6060   net/http/pprof on a side listener
//
// Endpoints:
//
//	GET  /v1/experiments               index with paper-artifact metadata
//	GET  /v1/experiments/{id}          one result (?format=text|json|csv)
//	GET  /v1/experiments/all           every result
//	POST /v1/scenarios                 run a declarative custom scenario
//	GET  /healthz                      liveness probe
//	GET  /metrics                      request/cache/latency counters
//
// POST /v1/scenarios takes a JSON scenario spec (model, systems with
// Table-1 overrides, metrics, optional sweep — see EXPERIMENTS.md).
// Results are cached by the spec's content fingerprint and served with a
// strong ETag derived from it, so identical specs revalidate with
// If-None-Match → 304.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tensortee"
	"tensortee/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse flags, listen, serve until ctx
// dies, drain, and return the exit code. The bound address is echoed to
// stdout (resolved, so -addr :0 works under test).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tensorteed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "listen address")
	parallel := fs.Int("parallel", 1, "experiments the Runner may execute concurrently (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 4, "cold experiment computations in flight at once (0 = unbounded)")
	maxScenarios := fs.Int("max-scenarios", 2, "scenario computations in flight at once (0 = unbounded)")
	warm := fs.Bool("warm", false, "compute every experiment before accepting traffic")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Profiling side listener: kept off the serving mux so the debug
	// surface is never exposed on the public address, and bound before
	// warm-up so cold computations can be profiled too.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pprof listen: %v\n", err)
			return 1
		}
		defer pln.Close()
		go func() {
			if err := http.Serve(pln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(stderr, "pprof serve: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "pprof listening on %s\n", pln.Addr())
	}

	runner := tensortee.NewRunner(
		tensortee.WithParallelism(*parallel),
		tensortee.WithCalibrationCache(true),
	)
	srv := server.New(server.Config{
		Runner:                 runner,
		MaxConcurrent:          *maxConcurrent,
		MaxConcurrentScenarios: *maxScenarios,
	})

	if *warm {
		fmt.Fprintln(stdout, "warming: computing all experiments...")
		start := time.Now()
		if _, err := runner.RunAll(ctx); err != nil {
			fmt.Fprintf(stderr, "warm failed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "warm done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "listen: %v\n", err)
		return 1
	}
	// Request contexts deliberately do NOT descend from the signal context:
	// a SIGTERM must stop the listener and let in-flight requests finish
	// (Shutdown below), not cancel them mid-computation.
	httpSrv := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "tensorteed listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "signal received, draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "drain incomplete: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "drained, bye")
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		return 0
	}
}
