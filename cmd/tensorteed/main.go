// Command tensorteed serves the TensorTEE paper's experiments over HTTP.
// Results are computed on first request, memoized in memory (calibrated
// systems and finished Results are both cached), and served with strong
// ETags so clients can revalidate cheaply.
//
// Usage:
//
//	tensorteed                         serve on :8344
//	tensorteed -addr :9000             custom listen address
//	tensorteed -parallel 4             worker pool inside the Runner
//	tensorteed -max-concurrent 2       bound concurrent cold computations
//	tensorteed -max-scenarios 2        bound concurrent scenario computations
//	tensorteed -campaign-workers 2     bound concurrent campaign point computations
//	tensorteed -campaign-retries 1     retry failed campaign points this many times
//	tensorteed -warm                   warm every experiment at startup
//	tensorteed -warm -warm-exit        ... then exit instead of serving
//	tensorteed -store-dir /var/lib/tt  persist results/calibrations on disk
//	tensorteed -store-max-bytes N      evict oldest entries past N bytes
//	tensorteed -peers http://a,http://b  probe replicas on local store miss
//	tensorteed -pprof localhost:6060   net/http/pprof on a side listener
//	tensorteed -rate-limit 10          per-client token bucket, 10 req/s
//	tensorteed -trusted-proxies 1      client = X-Forwarded-For behind 1 proxy
//	tensorteed -log-requests           structured JSON request log on stderr
//
// Endpoints:
//
//	GET  /v1/experiments               index with paper-artifact metadata
//	GET  /v1/experiments/{id}          one result (?format=text|json|csv)
//	GET  /v1/experiments/all           every result
//	POST /v1/scenarios                 run a declarative custom scenario
//	GET  /v1/scenarios/{fingerprint}   look up a computed scenario by fingerprint
//	POST /v1/campaigns                 submit an async multi-axis campaign
//	GET  /v1/campaigns                 all campaign statuses
//	GET  /v1/campaigns/{id}            one campaign status
//	GET  /v1/campaigns/{id}/events     NDJSON progress stream
//	DELETE /v1/campaigns/{id}          cancel (in-flight points drain)
//	GET  /v1/store                     persistent-store statistics
//	GET  /v1/store/{ns}/{key}          raw store envelope (peer replication)
//	GET  /healthz                      liveness probe
//	GET  /metrics                      request/cache/latency counters
//
// With -store-dir, every computed experiment result, scenario result and
// calibration snapshot writes through to a content-addressed store in
// that directory, and a restarted daemon (or a -warm pass) serves
// anything already on disk instead of recomputing it. With -peers, a
// local store miss additionally probes the listed replicas' /v1/store
// endpoints (strict per-probe timeout, fail-open), so a fleet computes
// each artifact once.
//
// The store itself degrades gracefully: repeated write failures
// (disk-full, I/O errors) flip it into a read-only degraded mode —
// reads, warm serves and peer replication keep working, new writes are
// suppressed, /healthz reports "store: degraded", and one probe write
// per -store-probe-interval tests whether the disk healed (a successful
// probe restores normal writes). The TENSORTEE_FAULTS environment
// variable injects deterministic store faults for chaos testing only.
//
// The serving path degrades instead of queueing under overload: when
// every -max-concurrent slot is busy (or the fill circuit breaker is
// open after repeated failures), requests for results already persisted
// in -store-dir are answered from disk with a Warning: 110 stale marker,
// and only requests with nothing stored shed with 503 + Retry-After.
// With -rate-limit, each client (per remote address, or per
// X-Forwarded-For entry behind -trusted-proxies proxies) gets a token
// bucket; clients over budget receive 429 + Retry-After while /healthz
// and /metrics stay exempt. Large negotiated bodies are gzip-compressed
// when the client accepts it.
//
// POST /v1/scenarios takes a JSON scenario spec (model, systems with
// Table-1 overrides, metrics, optional sweep — see EXPERIMENTS.md).
// Results are cached by the spec's content fingerprint and served with a
// strong ETag derived from it, so identical specs revalidate with
// If-None-Match → 304.
//
// POST /v1/campaigns takes a campaign spec — a base scenario plus axes
// to cross — and runs the grid asynchronously on a bounded worker pool.
// Every completed point checkpoints through -store-dir, so a daemon
// killed mid-campaign resumes it at the next start computing only the
// missing points; without -store-dir campaigns run but do not survive a
// restart.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (campaign workers included), then
// the process exits. A SIGKILL mid-campaign loses no completed points —
// each checkpoint is an atomic store write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tensortee"
	"tensortee/internal/faultinject"
	"tensortee/internal/server"
	"tensortee/internal/store"
)

// splitPeers parses the -peers value: comma-separated base URLs, blanks
// ignored, trailing slashes trimmed (the store appends its own paths).
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse flags, listen, serve until ctx
// dies, drain, and return the exit code. The bound address is echoed to
// stdout (resolved, so -addr :0 works under test).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tensorteed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "listen address")
	parallel := fs.Int("parallel", 1, "experiments the Runner may execute concurrently (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 4, "cold experiment computations in flight at once (0 = unbounded)")
	maxScenarios := fs.Int("max-scenarios", 2, "scenario computations in flight at once (0 = unbounded)")
	campaignWorkers := fs.Int("campaign-workers", 2, "campaign points computing at once")
	campaignRetries := fs.Int("campaign-retries", 1, "retries per failed campaign point")
	warm := fs.Bool("warm", false, "warm every experiment before accepting traffic")
	warmExit := fs.Bool("warm-exit", false, "with -warm: exit after warming instead of serving")
	storeDir := fs.String("store-dir", "", "persist results and calibrations in this directory; empty disables")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "evict oldest store entries past this many bytes (0 = unbounded)")
	storeProbeInterval := fs.Duration("store-probe-interval", 0, "while the store is degraded, admit one recovery probe write per interval (0 = 15s default)")
	peers := fs.String("peers", "", "comma-separated replica base URLs to probe on local store miss (requires -store-dir)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
	rateLimit := fs.Float64("rate-limit", 0, "per-client request budget in req/s (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "per-client burst on top of -rate-limit (0 = 2x the rate)")
	trustedProxies := fs.Int("trusted-proxies", 0, "trusted reverse proxies in front of the daemon; >0 keys clients by X-Forwarded-For")
	logRequests := fs.Bool("log-requests", false, "log every request as structured JSON on stderr")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "time allowed to read a request's headers (slowloris guard)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "time allowed to read a full request")
	writeTimeout := fs.Duration("write-timeout", 10*time.Minute, "time allowed to write a response (covers cold heavy-figure fills)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle budget")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *peers != "" && *storeDir == "" {
		fmt.Fprintln(stderr, "-peers requires -store-dir (peer fetches persist locally)")
		return 2
	}
	if *warmExit && !*warm {
		fmt.Fprintln(stderr, "-warm-exit requires -warm")
		return 2
	}

	// Profiling side listener: kept off the serving mux so the debug
	// surface is never exposed on the public address, and bound before
	// warm-up so cold computations can be profiled too.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pprof listen: %v\n", err)
			return 1
		}
		defer pln.Close()
		go func() {
			if err := http.Serve(pln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(stderr, "pprof serve: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "pprof listening on %s\n", pln.Addr())
	}

	opts := []tensortee.RunnerOption{
		tensortee.WithParallelism(*parallel),
		tensortee.WithCalibrationCache(true),
	}
	if *storeDir != "" {
		// TENSORTEE_FAULTS is the chaos-testing hook: a deterministic
		// fault plan injected into the store's I/O. Never a production
		// setting, hence the loud warning.
		faults, err := faultinject.FromEnv()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", faultinject.EnvVar, err)
			return 2
		}
		if faults.Enabled() {
			fmt.Fprintf(stderr, "WARNING: %s=%q — injecting store faults; NEVER set this in production\n",
				faultinject.EnvVar, faults.String())
		}
		st, err := store.Open(*storeDir, store.Options{
			MaxBytes:      *storeMaxBytes,
			Peers:         splitPeers(*peers),
			ProbeInterval: *storeProbeInterval,
			Faults:        faults,
		})
		if err != nil {
			fmt.Fprintf(stderr, "opening store: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "store: %s (build %s)\n", st.Dir(), store.BuildTag())
		opts = append(opts, tensortee.WithStore(st))
	}
	runner := tensortee.NewRunner(opts...)
	cfg := server.Config{
		Runner:                 runner,
		MaxConcurrent:          *maxConcurrent,
		MaxConcurrentScenarios: *maxScenarios,
		RateLimit:              *rateLimit,
		RateBurst:              *rateBurst,
		TrustedProxies:         *trustedProxies,
		CampaignWorkers:        *campaignWorkers,
		CampaignRetries:        *campaignRetries,
	}
	if *logRequests {
		cfg.Log = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	srv := server.New(cfg)

	// Crash recovery: campaigns interrupted by a previous process (crash,
	// SIGKILL, deploy) restart from their checkpoints before traffic is
	// accepted — completed points restore from the store, only the rest
	// compute.
	if *storeDir != "" {
		if n, err := srv.Campaigns().ResumeStored(); err != nil {
			fmt.Fprintf(stderr, "campaign resume: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(stdout, "campaigns: resumed %d\n", n)
		}
	}

	if *warm {
		fmt.Fprintln(stdout, "warming: filling the result cache...")
		start := time.Now()
		fromStore, computed, err := runner.WarmAll(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "warm failed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "warm done in %v: %d warmed from disk, %d computed\n",
			time.Since(start).Round(time.Millisecond), fromStore, computed)
		if *warmExit {
			return 0
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "listen: %v\n", err)
		return 1
	}
	// Request contexts deliberately do NOT descend from the signal context:
	// a SIGTERM must stop the listener and let in-flight requests finish
	// (Shutdown below), not cancel them mid-computation. The write timeout
	// must outlast a cold heavy-figure fill — a response that dies mid-body
	// looks like a compute failure to the client.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "tensorteed listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "signal received, draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "drain incomplete: %v\n", err)
			return 1
		}
		// Campaign workers drain inside the same budget: dispatch stops,
		// in-flight points finish and checkpoint. Whatever does not finish
		// is simply recomputed on the next start — an incomplete drain is
		// worth reporting but is not data loss.
		if err := srv.Campaigns().Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "campaign drain incomplete: %v\n", err)
		}
		fmt.Fprintln(stdout, "drained, bye")
		return 0
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		return 0
	}
}
