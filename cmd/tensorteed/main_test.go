package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the daemon writes from its
// serve goroutine while the test polls for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon boots run() on an ephemeral port and returns the base URL,
// a cancel func, and the channel the exit code arrives on.
func startDaemon(t *testing.T, args ...string) (base string, stop context.CancelFunc, exit <-chan int, out *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	errBuf := &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, errBuf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Match the daemon's own line specifically: with -pprof a
		// "pprof listening on ..." line precedes it.
		if s := out.String(); strings.Contains(s, "tensorteed listening on ") {
			line := s[strings.Index(s, "tensorteed listening on ")+len("tensorteed listening on "):]
			addr := strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			t.Cleanup(cancel)
			return "http://" + addr, cancel, codeCh, out
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address (stdout %q, stderr %q)", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonServesAndDrains boots the real daemon loop, exercises the
// cache-hit path end to end (200 with ETag, then 304), and checks the
// context-cancel path drains cleanly with exit code 0 — the same flow a
// SIGTERM takes in production.
func TestDaemonServesAndDrains(t *testing.T) {
	base, cancel, exit, out := startDaemon(t, "-max-concurrent", "1")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/experiments/tab2?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "=== tab2:") {
		t.Fatalf("tab2 = %d %q", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on experiment response")
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/v1/experiments/tab2?format=text", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp2.StatusCode)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code = %d, want 0 (output: %s)", code, out.String())
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not exit after cancellation")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("drain message missing from output: %s", out.String())
	}
}

// TestDaemonDrainsInFlightComputation pins the shipped configuration's
// drain path: a request still computing its experiment when the signal
// context dies must complete with 200, not be cancelled mid-flight.
func TestDaemonDrainsInFlightComputation(t *testing.T) {
	if testing.Short() {
		t.Skip("computes a calibrating experiment")
	}
	base, cancel, exit, out := startDaemon(t)

	type reply struct {
		code int
		err  error
	}
	replies := make(chan reply, 1)
	go func() {
		// fig5 calibrates two systems, so it is still in flight when the
		// daemon starts draining.
		resp, err := http.Get(base + "/v1/experiments/fig5?format=text")
		if err != nil {
			replies <- reply{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		replies <- reply{resp.StatusCode, nil}
	}()
	time.Sleep(150 * time.Millisecond) // let the request reach the handler
	cancel()                           // what SIGTERM does in production

	select {
	case r := <-replies:
		if r.err != nil || r.code != http.StatusOK {
			t.Errorf("in-flight request = %d %v, want 200", r.code, r.err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("in-flight request never completed")
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code = %d, want 0 (output: %s)", code, out.String())
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not exit after drain")
	}
}

// TestDaemonServesScenarios pins the POST /v1/scenarios route through the
// real daemon, including the -max-scenarios flag parsing.
func TestDaemonServesScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario computation calibrates a system")
	}
	base, _, _, _ := startDaemon(t, "-max-scenarios", "1")
	spec := `{"name": "daemon-smoke",
	          "model": {"layers": 1, "hidden": 128, "heads": 2, "batch": 1, "seqlen": 64},
	          "systems": [{"kind": "non-secure"}], "metrics": ["total"]}`
	resp, err := http.Post(base+"/v1/scenarios", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"id": "scenario:daemon-smoke"`) {
		t.Errorf("body missing scenario id:\n%.300s", body)
	}
	if etag := resp.Header.Get("ETag"); etag == "" {
		t.Error("missing ETag on scenario response")
	}
}

func TestDaemonBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestDaemonBadAddr(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "listen") {
		t.Errorf("listen error not reported: %s", errBuf.String())
	}
}

// TestDaemonPprofSideListener boots the daemon with -pprof on an
// ephemeral side port and checks the profiling surface is served there —
// and only there: the public address must not expose /debug/pprof/.
func TestDaemonPprofSideListener(t *testing.T) {
	base, stop, exit, out := startDaemon(t, "-pprof", "127.0.0.1:0")
	defer stop()

	// The pprof line is printed before the serving line, so it is
	// already in the buffer.
	s := out.String()
	marker := "pprof listening on "
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("no pprof address in output %q", s)
	}
	pprofAddr := strings.TrimSpace(strings.SplitN(s[i+len(marker):], "\n", 2)[0])

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d, want 200", resp.StatusCode)
	}

	// The public mux must not serve the debug surface.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("public endpoint: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("public address exposes /debug/pprof/")
	}

	stop()
	if code := <-exit; code != 0 {
		t.Errorf("exit code = %d", code)
	}
}
