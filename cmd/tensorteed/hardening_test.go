package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startDaemonStderr is startDaemon plus the stderr stream, for tests that
// assert on the structured request log.
func startDaemonStderr(t *testing.T, args ...string) (base string, errBuf *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errBuf = &syncBuffer{}
	go run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, errBuf)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "tensorteed listening on ") {
			line := s[strings.Index(s, "tensorteed listening on ")+len("tensorteed listening on "):]
			addr := strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			t.Cleanup(cancel)
			return "http://" + addr, errBuf
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address (stdout %q, stderr %q)", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSlowlorisConnectionReaped pins the read-header timeout: a client
// that trickles an eternally unfinished header block gets its connection
// closed by the server instead of pinning a goroutine forever.
func TestSlowlorisConnectionReaped(t *testing.T) {
	base, _, _, _ := startDaemon(t, "-read-header-timeout", "200ms")

	conn, err := net.DialTimeout("tcp", strings.TrimPrefix(base, "http://"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A syntactically valid but unterminated header block: the server
	// must not wait for the blank line that never comes.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: tensorteed\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1024)
	for {
		n, err := conn.Read(buf)
		if err == io.EOF || (err == nil && n == 0) {
			return // server reaped the connection — the regression is pinned
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("connection still open 10s after the 200ms header deadline")
			}
			return // reset etc. — also closed
		}
		// Some servers write a 408 before closing; keep reading to EOF.
	}
}

// TestDaemonRateLimitFlag pins the -rate-limit wiring end to end: the
// daemon sheds a client that exhausts its bucket with 429 + Retry-After.
func TestDaemonRateLimitFlag(t *testing.T) {
	base, _, _, _ := startDaemon(t, "-rate-limit", "0.001", "-rate-burst", "1")

	resp, err := http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second request = %d (Retry-After %q), want 429 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestDaemonLogRequestsFlag pins -log-requests: structured JSON records
// land on stderr, one per request.
func TestDaemonLogRequestsFlag(t *testing.T) {
	base, errBuf := startDaemonStderr(t, "-log-requests")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := errBuf.String()
		if strings.Contains(s, `"path":"/healthz"`) && strings.Contains(s, `"status":200`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no request log record on stderr:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
