package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tensortee/internal/campaign"
)

// daemonEnvVar gates TestCampaignDaemonProcess: when set, the test binary
// stops being a test and becomes a real tensorteed process, so the
// kill-and-resume test below can SIGKILL it — something an in-process
// daemon (startDaemon) can never simulate.
const daemonEnvVar = "TENSORTEED_CAMPAIGN_DAEMON_ARGS"

// TestCampaignDaemonProcess is not a test: it is the daemon half of the
// cross-process crash test, entered only when the re-exec env var is set.
func TestCampaignDaemonProcess(t *testing.T) {
	args := os.Getenv(daemonEnvVar)
	if args == "" {
		t.Skip("daemon re-exec helper; driven by TestCampaignSurvivesSIGKILL")
	}
	os.Exit(run(context.Background(), strings.Split(args, "\n"), os.Stdout, os.Stderr))
}

// spawnDaemonProcess re-execs the test binary as a real tensorteed
// process and waits for it to report its address. The returned process
// can be SIGKILLed — no defer, no graceful drain, exactly the crash the
// checkpoint format exists for.
func spawnDaemonProcess(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCampaignDaemonProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		daemonEnvVar+"="+strings.Join(append([]string{"-addr", "127.0.0.1:0"}, args...), "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "tensorteed listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon process never reported its address")
		return nil, ""
	}
}

// killResumeCampaign is sized so points are individually cheap but not
// instant: every point carries a distinct meta_cache_kb override, so each
// one calibrates its own system (~hundreds of ms) — wide enough a window
// to SIGKILL the daemon mid-grid deterministically.
const killResumeCampaign = `{
  "name": "kill-resume",
  "base": {
    "name": "kill-resume-base",
    "model": {"layers": 1, "hidden": 256, "heads": 4, "batch": 1, "seqlen": 128},
    "systems": [{"kind": "sgx-mgx"}],
    "metrics": ["total"]
  },
  "axes": [{"axis": "meta_cache_kb", "values": [64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384, 416]}]
}`

func campaignStatus(t *testing.T, url string) campaign.Status {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status poll = %d (%s)", resp.StatusCode, b)
	}
	var st campaign.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decoding status %q: %v", b, err)
	}
	return st
}

// TestCampaignSurvivesSIGKILL is the crash-safety acceptance test:
// SIGKILL a real daemon process mid-campaign, restart a fresh process
// against the same store directory, and require that the campaign
// completes with every pre-kill checkpoint restored and zero points
// recomputed.
func TestCampaignSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes and computes a 12-point grid")
	}
	dir := t.TempDir()

	daemon1, base1 := spawnDaemonProcess(t, "-store-dir", dir, "-campaign-workers", "1")
	resp, err := http.Post(base1+"/v1/campaigns", "application/json", strings.NewReader(killResumeCampaign))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d (%s)", resp.StatusCode, b)
	}
	var st campaign.Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	statusURL := "/v1/campaigns/" + st.ID

	// Let the grid get roughly halfway, then SIGKILL — no drain, no
	// flushing beyond what each point's atomic checkpoint write already
	// guaranteed.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur := campaignStatus(t, base1+statusURL)
		if cur.Done >= cur.Total/2 {
			break
		}
		if cur.State != campaign.StateRunning {
			t.Fatalf("campaign finished before the kill (state %q) — points are too cheap", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached the kill point: %+v", cur)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := daemon1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = daemon1.Process.Wait()

	// The surviving checkpoints are exactly the .p* files on disk.
	points, err := filepath.Glob(filepath.Join(dir, "campaign", st.ID+".p*.tte"))
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := len(points)
	if checkpointed == 0 || checkpointed >= st.Total {
		t.Fatalf("checkpoints after kill = %d, want mid-campaign (0 < n < %d)", checkpointed, st.Total)
	}

	// A fresh process against the same store resumes the campaign before
	// accepting traffic and computes only what is missing.
	_, base2 := spawnDaemonProcess(t, "-store-dir", dir, "-campaign-workers", "1")
	var final campaign.Status
	deadline = time.Now().Add(2 * time.Minute)
	for {
		final = campaignStatus(t, base2+statusURL)
		if final.State != campaign.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaign never finished: %+v", final)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.State != campaign.StateDone {
		t.Fatalf("resumed state = %q, want done (%+v)", final.State, final)
	}
	if final.Failed != 0 || final.Skipped != 0 {
		t.Fatalf("resumed run lost points: %+v", final)
	}
	if final.Restored != checkpointed {
		t.Errorf("restored = %d, want every one of the %d pre-kill checkpoints", final.Restored, checkpointed)
	}
	if want := st.Total - checkpointed; final.Computed != want {
		t.Errorf("computed = %d, want only the %d missing points (recompute = data loss in time)", final.Computed, want)
	}
	if final.Restored+final.Computed != st.Total {
		t.Errorf("restored %d + computed %d != total %d", final.Restored, final.Computed, st.Total)
	}
	fmt.Printf("kill-resume: %d checkpointed before SIGKILL, %d restored, %d computed after restart\n",
		checkpointed, final.Restored, final.Computed)
}
