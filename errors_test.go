package tensortee

import (
	"errors"
	"testing"

	"tensortee/internal/mee"
	"tensortee/internal/npumac"
)

// TestSentinelErrorsRoundTrip pins that every public failure mode is
// matchable with errors.Is against its sentinel, and that the underlying
// internal error types remain reachable with errors.As.
func TestSentinelErrorsRoundTrip(t *testing.T) {
	p := newTestPlatform(t)

	// ErrUnknownTensor: every name-keyed entry point.
	if _, err := p.ReadTensor(CPUSide, "ghost"); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("ReadTensor = %v, want ErrUnknownTensor", err)
	}
	if err := p.WriteTensor(CPUSide, "ghost", []float32{1}); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("WriteTensor = %v, want ErrUnknownTensor", err)
	}
	if err := p.Transfer(NPUSide, "ghost"); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("Transfer = %v, want ErrUnknownTensor", err)
	}
	if err := p.TransferStaged(NPUSide, "ghost"); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("TransferStaged = %v, want ErrUnknownTensor", err)
	}
	if err := p.TamperMemory(NPUSide, "ghost", 0); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("TamperMemory = %v, want ErrUnknownTensor", err)
	}
	if _, err := p.Tensor("ghost"); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("Tensor = %v, want ErrUnknownTensor", err)
	}
	if err := p.AdamStep("ghost", "ghost", "ghost", "ghost", 1); !errors.Is(err, ErrUnknownTensor) {
		t.Errorf("AdamStep = %v, want ErrUnknownTensor", err)
	}

	// ErrTensorExists.
	if _, err := p.CreateTensor(CPUSide, "dup", []float32{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateTensor(CPUSide, "dup", []float32{2}); !errors.Is(err, ErrTensorExists) {
		t.Errorf("duplicate CreateTensor = %v, want ErrTensorExists", err)
	}

	// ErrRegionFull (1 MB region from newTestPlatform).
	if _, err := p.CreateTensor(CPUSide, "huge", make([]float32, 1<<20)); !errors.Is(err, ErrRegionFull) {
		t.Errorf("oversized CreateTensor = %v, want ErrRegionFull", err)
	}

	// ErrPoisoned: a transferred tensor cannot be consumed pre-barrier.
	g, err := p.CreateTensor(NPUSide, "g", []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Transfer(NPUSide); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(CPUSide); !errors.Is(err, ErrPoisoned) {
		t.Errorf("pre-barrier read = %v, want ErrPoisoned", err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(CPUSide); err != nil {
		t.Errorf("post-barrier read = %v, want nil", err)
	}

	// ErrTampered on a direct read, with the mee error still reachable.
	v, err := p.CreateTensor(NPUSide, "victim", []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TamperMemory(NPUSide, "victim", 12); err != nil {
		t.Fatal(err)
	}
	_, err = v.Read(NPUSide)
	if !errors.Is(err, ErrTampered) {
		t.Errorf("tampered read = %v, want ErrTampered", err)
	}
	var ie *mee.IntegrityError
	if !errors.As(err, &ie) {
		t.Errorf("underlying IntegrityError lost: %v", err)
	}

	// ErrTampered at the verification barrier, with the npumac error
	// still reachable.
	err = v.Transfer(NPUSide)
	if err == nil {
		err = v.Verify()
	}
	if !errors.Is(err, ErrTampered) {
		t.Errorf("tampered transfer+barrier = %v, want ErrTampered", err)
	}
	var ve *npumac.VerificationError
	if !errors.As(err, &ve) && !errors.As(err, &ie) {
		t.Errorf("underlying error type lost: %v", err)
	}

	// A failed tensor stays poisoned: reads keep failing closed.
	if _, err := v.Read(CPUSide); !errors.Is(err, ErrPoisoned) && !errors.Is(err, ErrTampered) {
		t.Errorf("read of failed tensor = %v, want ErrPoisoned/ErrTampered", err)
	}
}

// TestAdamStepRefusesPoisonedGradient pins that the optimizer is a
// consumer like any other: a transferred-but-unverified gradient must not
// reach the Adam update.
func TestAdamStepRefusesPoisonedGradient(t *testing.T) {
	p := newTestPlatform(t)
	for _, name := range []string{"w", "m", "v"} {
		if _, err := p.CreateTensor(CPUSide, name, []float32{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := p.CreateTensor(NPUSide, "g", []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Transfer(NPUSide); err != nil {
		t.Fatal(err)
	}
	if err := p.AdamStep("w", "g", "m", "v", 1); !errors.Is(err, ErrPoisoned) {
		t.Errorf("AdamStep on unverified gradient = %v, want ErrPoisoned", err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := p.AdamStep("w", "g", "m", "v", 1); err != nil {
		t.Errorf("AdamStep after barrier = %v, want nil", err)
	}
}

func TestTamperMemoryRejectsOutOfRangeBits(t *testing.T) {
	p := newTestPlatform(t)
	// 40 floats = 160 bytes: spans three 64-byte lines, 1280 valid bits.
	h, err := p.CreateTensor(NPUSide, "t", make([]float32, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{-1, 160 * 8, 160*8 + 7, 1 << 20} {
		if err := p.TamperMemory(NPUSide, "t", bit); err == nil {
			t.Errorf("out-of-range bit %d accepted", bit)
		}
	}
	// The last valid bit targets the LAST line; the fix must not wrap it
	// onto an earlier one. The flip must be detected on read.
	if err := p.TamperMemory(NPUSide, "t", 160*8-1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(NPUSide); !errors.Is(err, ErrTampered) {
		t.Errorf("tamper of last bit undetected: %v", err)
	}
	// Earlier lines are untouched: reading just the first element's line
	// via a fresh tensor on the same platform still works.
	clean, err := p.CreateTensor(NPUSide, "clean", []float32{42})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := clean.Read(NPUSide); err != nil || got[0] != 42 {
		t.Errorf("unrelated tensor affected: %v %v", got, err)
	}
}

func TestVerifyBarrierDedupesNames(t *testing.T) {
	p := newTestPlatform(t)
	g, err := p.CreateTensor(NPUSide, "g", []float32{3, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Transfer(NPUSide); err != nil {
		t.Fatal(err)
	}
	// Duplicated names must complete each pending verification once.
	if err := p.VerifyBarrier("g", "g", "g"); err != nil {
		t.Fatalf("duplicated names at barrier: %v", err)
	}
	if g.Poisoned() {
		t.Error("poison not cleared")
	}
	// Mixing unknown and untransferred names stays clean.
	if err := p.VerifyBarrier("g", "never-created", "g"); err != nil {
		t.Errorf("barrier with unknown names: %v", err)
	}
}
