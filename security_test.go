package tensortee

import (
	"testing"

	"tensortee/internal/comm"
	"tensortee/internal/crypto"
	"tensortee/internal/enclave"
	"tensortee/internal/mee"
	"tensortee/internal/npumac"
)

// These integration tests walk the threat model of Section 2.4 end to end:
// the adversary controls the OS, both off-chip memories, and both buses.
// Every attack must fail closed.

func TestAttackBusSnoopSeesOnlyCiphertext(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	r := mee.NewRegion(key, 0x1000, 1<<12, 64)
	secret := make([]byte, 64)
	copy(secret, "extremely secret model weights!!")
	r.WriteLine(0x1000, secret)

	// The bus adversary observes the exported line (what DMA would carry).
	exp := r.ExportLine(0x1000)
	for i := range secret {
		if secret[i] != 0 && exp.Ciphertext[i] == secret[i] {
			// A byte may collide by chance; require most bytes differ.
			continue
		}
	}
	same := 0
	for i := range secret {
		if exp.Ciphertext[i] == secret[i] {
			same++
		}
	}
	if same > 8 {
		t.Errorf("%d/64 plaintext bytes visible on the bus", same)
	}
}

func TestAttackMemoryCorruptionAllPaths(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	r := mee.NewRegion(key, 0x1000, 1<<12, 64)
	line := make([]byte, 64)
	r.WriteLine(0x1000, line)
	r.TamperCipher(0x1000, 42)

	// SGX-style verified read.
	if _, err := r.ReadLine(0x1000); err == nil {
		t.Error("verified read accepted corrupted line")
	}
	// Tensor-mode read with on-chip VN.
	if _, err := r.ReadLineWithVN(0x1000, 1); err == nil {
		t.Error("tensor-mode read accepted corrupted line")
	}
	// Delayed verification: the recomputed MAC must diverge.
	_, mac := r.ReadLineUnverified(0x1000, 1)
	if mac == r.LineMAC(0x1000) {
		t.Error("delayed verification would accept corrupted line")
	}
}

func TestAttackReplayOldTensorAcrossTransfer(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	src := mee.NewRegion(key, 0x1000, 1<<12, 64)
	dst := mee.NewRegion(key, 0x1000, 1<<12, 64)

	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = 0x11 // version 1 of the tensor
	}
	if _, err := src.WriteBytes(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	// Adversary snapshots every line of version 1.
	snaps := make([]mee.SnapshotLine, 4)
	for i := range snaps {
		snaps[i] = src.Snapshot(0x1000 + uint64(i*64))
	}
	for i := range buf {
		buf[i] = 0x22 // version 2
	}
	if _, err := src.WriteBytes(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	// Rollback the whole tensor off-chip.
	for _, s := range snaps {
		src.Replay(s)
	}

	// The direct transfer's trusted-channel MAC comes from the on-chip
	// Meta Table state... here modeled by the stored MACs, which the
	// replay rolled back consistently — so the transfer-level check alone
	// would pass. The SGX-path read (Merkle root) must catch the replay.
	if _, err := src.ReadLine(0x1000); err == nil {
		t.Error("Merkle-protected read accepted replayed tensor")
	}
	_ = dst
}

func TestAttackTrustedChannelReplay(t *testing.T) {
	key := crypto.MustKey([]byte("0123456789abcdef"))
	ch := comm.NewTrustedChannel(key)
	ch.Send(comm.TensorMeta{Base: 0, Lines: 4, VN: 7, MAC: 0xabc})
	if _, err := ch.Recv(); err != nil {
		t.Fatal(err)
	}
	// Adversary re-injects the same sealed blob: the sequence number has
	// moved on, so Open must reject it.
	ch2 := comm.NewTrustedChannel(key)
	ch2.Send(comm.TensorMeta{Base: 0, Lines: 4, VN: 7, MAC: 0xabc})
	blob2, err := ch2.Recv() // consume legitimately
	if err != nil {
		t.Fatal(err)
	}
	_ = blob2
	// Direct check at the crypto layer: replaying seq 0 against expected 1.
	sealed := key.Seal([]byte("metadata"), 0)
	if _, err := key.Open(sealed, 1); err == nil {
		t.Error("channel replay accepted")
	}
}

func TestAttackCrossEnclaveKeyIsolation(t *testing.T) {
	// A tensor encrypted under one session must be garbage under another
	// (a malicious platform cannot splice enclave pairs together).
	cpu1 := enclave.Create(enclave.CPUEnclave, []byte("img"), 1)
	npu1 := enclave.Create(enclave.NPUEnclave, []byte("img2"), 2)
	k1, _, err := enclave.Pair(cpu1, npu1)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := enclave.Create(enclave.CPUEnclave, []byte("img"), 3)
	npu2 := enclave.Create(enclave.NPUEnclave, []byte("img2"), 4)
	k2, _, err := enclave.Pair(cpu2, npu2)
	if err != nil {
		t.Fatal(err)
	}

	src := mee.NewRegion(k1, 0x1000, 1<<12, 64)
	foreign := mee.NewRegion(k2, 0x1000, 1<<12, 64)
	line := make([]byte, 64)
	copy(line, "session-1 secret")
	src.WriteLine(0x1000, line)

	exp := src.ExportLine(0x1000)
	if err := foreign.ImportLine(exp, true); err == nil {
		t.Error("foreign session imported another session's ciphertext")
	}
}

func TestAttackPoisonedOutputCannotLeaveEnclave(t *testing.T) {
	v := npumac.NewVerifier(8)
	// Kernel consumes an unverified input; its output inherits poison.
	v.BeginRead(1, 0xdead) // reference MAC that will not match
	v.AccumulateLine(1, 0xbeef)
	if err := v.CompleteRead(1); err == nil {
		t.Fatal("verification should fail")
	}
	v.Propagate(2, 1)
	v.Propagate(3, 2)
	if err := v.Barrier(3); err == nil {
		t.Error("transitively poisoned tensor crossed the communication barrier")
	}
}

func TestAttackPlatformEndToEnd(t *testing.T) {
	p, err := NewPlatform(WithRegionBytes(1<<20), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateTensor(NPUSide, "grad", []float32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	// Clean transfer round.
	if err := p.Transfer(NPUSide, "grad"); err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyBarrier("grad"); err != nil {
		t.Fatal(err)
	}
	// Now the adversary corrupts the CPU-side copy post-transfer; a fresh
	// read must catch it.
	if err := p.TamperMemory(CPUSide, "grad", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTensor(CPUSide, "grad"); err == nil {
		t.Error("post-transfer corruption read back silently")
	}
	// The NPU-side original remains intact.
	if _, err := p.ReadTensor(NPUSide, "grad"); err != nil {
		t.Errorf("unrelated side affected: %v", err)
	}
}

func TestAttackCodeTamperNotDelayed(t *testing.T) {
	// Code fetches must verify inline: a tampered instruction line is
	// rejected before issue, independent of any barrier.
	v := npumac.NewVerifier(8)
	if err := v.VerifyCode(0x1111, 0x2222); err == nil {
		t.Error("tampered code line issued")
	}
	if v.Stats().CodeFailures != 1 {
		t.Error("code failure not recorded")
	}
}
