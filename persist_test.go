package tensortee

import (
	"bytes"
	"context"
	"testing"
	"time"

	"tensortee/internal/store"
)

// renderAll captures the three wire representations of a result with
// Elapsed zeroed — the byte-for-byte contract the store must preserve.
func renderAll(t *testing.T, res *Result) map[string][]byte {
	t.Helper()
	clone := *res
	clone.Elapsed = 0
	j, err := clone.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"text": []byte(clone.Text()),
		"json": j,
		"csv":  []byte(clone.CSV()),
	}
}

// TestStoredResultCodecIsLossless pins why the dedicated codec exists:
// the public JSON form fabricates numeric cell text on decode, so a cell
// whose rendered text is not Go's default float formatting would corrupt
// Text/CSV output after a public-JSON round trip. The stored form keeps
// text and number independently.
func TestStoredResultCodecIsLossless(t *testing.T) {
	res := &Result{
		ID:    "codec-probe",
		Title: "codec probe",
		Tables: []ResultTable{{
			Title:   "t",
			Columns: []string{"label", "value"},
			Rows: [][]Cell{{
				{Text: "row"},
				{Text: "1.50", Number: 1.5, IsNumber: true}, // not FormatFloat(1.5,'g',-1,64)
			}},
		}},
		Scalars: map[string]float64{"s": 2.25},
		Notes:   []string{"a note"},
		Elapsed: 3 * time.Second,
	}
	b, err := res.EncodeStored()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStoredResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Elapsed != 0 {
		t.Errorf("Elapsed survived the store: %v", got.Elapsed)
	}
	if cell := got.Tables[0].Rows[0][1]; cell.Text != "1.50" || cell.Number != 1.5 || !cell.IsNumber {
		t.Errorf("numeric cell mangled: %+v", cell)
	}
	want := renderAll(t, res)
	have := renderAll(t, got)
	for _, f := range []string{"text", "json", "csv"} {
		if !bytes.Equal(want[f], have[f]) {
			t.Errorf("%s rendering changed through the codec", f)
		}
	}
	if res.Fingerprint() != got.Fingerprint() {
		t.Error("fingerprint changed through the codec")
	}
}

func TestDecodeStoredResultRejectsBadPayloads(t *testing.T) {
	for name, payload := range map[string]string{
		"garbage":       "not json",
		"wrong version": `{"v":99,"id":"x","title":"x"}`,
		"empty id":      `{"v":1,"title":"x"}`,
	} {
		if _, err := DecodeStoredResult([]byte(payload)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestStoredResultsRoundTripGolden pushes every paper artifact through a
// real on-disk store — encode, Put, Get from another Store handle over
// the same directory, decode — and asserts all three renderings come
// back byte-identical to the freshly computed result. Heavy experiments
// gate exactly like TestGoldenOutputs.
func TestStoredResultsRoundTripGolden(t *testing.T) {
	dir := t.TempDir()
	writer, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range Experiments() {
		t.Run(info.ID, func(t *testing.T) {
			if info.Heavy {
				if testing.Short() && !shortOK[info.ID] {
					t.Skip("heavy experiment in -short mode")
				}
				if raceEnabled {
					t.Skip("heavy experiment under the race detector; the non-race CI job covers it")
				}
			}
			t.Parallel()
			res := goldenResult(t, info.ID)
			b, err := res.EncodeStored()
			if err != nil {
				t.Fatal(err)
			}
			if err := writer.Put(store.Results, info.ID, b); err != nil {
				t.Fatal(err)
			}
			stored, ok := reader.Get(store.Results, info.ID)
			if !ok {
				t.Fatal("written entry missed on read")
			}
			got, err := DecodeStoredResult(stored)
			if err != nil {
				t.Fatal(err)
			}
			want := renderAll(t, res)
			have := renderAll(t, got)
			for _, f := range []string{"text", "json", "csv"} {
				if !bytes.Equal(want[f], have[f]) {
					t.Errorf("%s: %s rendering changed through the disk store:\n%s",
						info.ID, f, diffHint(have[f], want[f]))
				}
			}
		})
	}
}

// TestRestartServesHeavyFigureFromDisk pins the headline cold-start win:
// a heavy figure computed by one Runner is served by a fresh Runner
// (fresh process, in effect: nothing shared but the store directory)
// as a disk hit — no simulation, and fast. Computing fig18 means running
// a multi-config sweep with fresh calibrations, which takes orders of
// magnitude longer than the one-second bound asserted here.
func TestRestartServesHeavyFigureFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment in -short mode")
	}
	if raceEnabled {
		t.Skip("heavy experiment under the race detector; the non-race CI job covers it")
	}
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The shared goldenRunner computes fig18 once per test binary; persist
	// its result the same way a -store-dir Runner would.
	res := goldenResult(t, "fig18")
	b, err := res.EncodeStored()
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Put(store.Results, "fig18", b); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	restarted := NewRunner(WithStore(st2))
	start := time.Now()
	got, err := restarted.Cached(context.Background(), "fig18")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !restarted.ResultFromStore("fig18") {
		t.Fatal("restarted runner recomputed fig18 instead of reading the store")
	}
	if elapsed > time.Second {
		t.Errorf("disk serve took %v; that is a recompute, not a read", elapsed)
	}
	want := renderAll(t, res)
	have := renderAll(t, got)
	for _, f := range []string{"text", "json", "csv"} {
		if !bytes.Equal(want[f], have[f]) {
			t.Errorf("%s rendering changed across the restart", f)
		}
	}
	if st2.Stats().DiskHits == 0 {
		t.Error("no disk hit counted")
	}
}

// TestCalibrationSnapshotsWarmAcrossRunners pins the calibration tier:
// a second Runner over the same store directory rebuilds its systems
// from persisted snapshots (observable as calibration-namespace disk
// hits) and produces byte-identical experiment output.
func TestCalibrationSnapshotsWarmAcrossRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a system")
	}
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := NewRunner(WithStore(st1))
	res1, err := first.Run(context.Background(), "fig15")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Stats().Writes == 0 {
		t.Fatal("no snapshots persisted")
	}

	// Run (not Cached) always re-executes the experiment, so the second
	// runner's only store benefit is the calibration snapshot tier.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second := NewRunner(WithStore(st2))
	res2, err := second.Run(context.Background(), "fig15")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().DiskHits == 0 {
		t.Error("second runner did not read calibration snapshots")
	}
	want := renderAll(t, res1)
	have := renderAll(t, res2)
	for _, f := range []string{"text", "json", "csv"} {
		if !bytes.Equal(want[f], have[f]) {
			t.Errorf("%s rendering differs under snapshot-based calibration", f)
		}
	}
}
