//go:build !race

package tensortee

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
