package tensortee

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"tensortee/internal/experiments"
)

func runResult(t *testing.T, id string) *Result {
	t.Helper()
	res, err := NewRunner().Run(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultTextMatchesReport pins renderer fidelity: the typed Result's
// Text() must reproduce the internal Report.String() exactly, so the CLI
// output is unchanged by the API redesign.
func TestResultTextMatchesReport(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "fig4", "hw"} {
		rep, err := experiments.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		res := runResult(t, id)
		if res.Text() != rep.String() {
			t.Errorf("%s: Text() diverged from Report.String():\n--- typed ---\n%s\n--- report ---\n%s",
				id, res.Text(), rep.String())
		}
	}
}

func TestResultTypedCells(t *testing.T) {
	res := runResult(t, "tab2")
	tb := res.Tables[0]
	if got := tb.Column("batch size"); got < 0 {
		t.Fatalf("missing 'batch size' column in %v", tb.Columns)
	}
	bs := tb.Column("batch size")
	model := tb.Column("model")
	for _, row := range tb.Rows {
		if !row[bs].IsNumber || row[bs].Number <= 0 {
			t.Errorf("batch size cell %+v not numeric", row[bs])
		}
		if row[model].IsNumber {
			t.Errorf("model name cell %+v unexpectedly numeric", row[model])
		}
	}
	if tb.Column("no-such-column") != -1 {
		t.Error("unknown column not reported as -1")
	}
}

func TestResultJSON(t *testing.T) {
	res := runResult(t, "tab2")
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string `json:"id"`
		Tables []struct {
			Columns []string            `json:"columns"`
			Rows    [][]json.RawMessage `json:"rows"`
		} `json:"tables"`
		Scalars map[string]float64 `json:"scalars"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if decoded.ID != "tab2" || decoded.Scalars["models"] != 12 {
		t.Errorf("decoded = %+v", decoded)
	}
	// Numeric cells are JSON numbers (unquoted), strings are quoted.
	row := decoded.Tables[0].Rows[0]
	if row[0][0] != '"' {
		t.Errorf("model cell should be a JSON string, got %s", row[0])
	}
	sawNumber := false
	for _, cell := range row[1:] {
		if cell[0] != '"' {
			sawNumber = true
		}
	}
	if !sawNumber {
		t.Error("no numeric JSON cells in a numeric table")
	}
}

func TestCellJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Cell
	}{
		{`3.5`, Cell{Text: "3.5", Number: 3.5, IsNumber: true}},
		{`"GPT2-M"`, Cell{Text: "GPT2-M"}},
		{`null`, Cell{}}, // foreign input: must not fabricate a numeric 0
	}
	for _, tc := range cases {
		var c Cell
		if err := json.Unmarshal([]byte(tc.in), &c); err != nil {
			t.Errorf("unmarshal %s: %v", tc.in, err)
			continue
		}
		if c != tc.want {
			t.Errorf("unmarshal %s = %+v, want %+v", tc.in, c, tc.want)
		}
	}
	var c Cell
	if err := json.Unmarshal([]byte(`true`), &c); err == nil {
		t.Error("bool accepted as a cell")
	}
	// Marshal → Unmarshal round-trips both cell kinds.
	for _, orig := range []Cell{{Text: "x"}, {Text: "2", Number: 2, IsNumber: true}} {
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var back Cell
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != orig {
			t.Errorf("round-trip %+v -> %+v", orig, back)
		}
	}
}

func TestResultCSV(t *testing.T) {
	res := runResult(t, "hw")
	csvOut := res.CSV()
	if !strings.Contains(csvOut, "table,on-chip storage") {
		t.Errorf("CSV missing table header:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "component,bytes") {
		t.Errorf("CSV missing column row:\n%s", csvOut)
	}
	if !strings.Contains(csvOut, "scalar,total_kb,") {
		t.Errorf("CSV missing scalar line:\n%s", csvOut)
	}
}

func TestResultScalar(t *testing.T) {
	res := runResult(t, "hw")
	if v, err := res.Scalar("total_kb"); err != nil || v < 18 || v > 30 {
		t.Errorf("total_kb = %g, %v", v, err)
	}
	if _, err := res.Scalar("nope"); err == nil {
		t.Error("unknown scalar accepted")
	}
}
