package tensortee

import (
	"fmt"
	"sync"

	"tensortee/internal/comm"
	"tensortee/internal/enclave"
	"tensortee/internal/mee"
	"tensortee/internal/npumac"
	"tensortee/internal/tensor"
	"tensortee/internal/workload"
)

// Side names one of the two enclaves of a Platform.
type Side int

const (
	// CPUSide is the host enclave (optimizer states, Meta Table).
	CPUSide Side = iota
	// NPUSide is the accelerator enclave (GDDR memory, delayed verifier).
	NPUSide
)

// String names the side ("cpu" or "npu").
func (s Side) String() string {
	if s == CPUSide {
		return "cpu"
	}
	return "npu"
}

// Platform is the functional secure-collaboration runtime: two attested
// enclaves sharing a DH session key, each backing its tensors with real
// AES-CTR protected memory, connected by the direct transfer protocol.
// It exists so applications (and the examples) can exercise the actual
// security mechanisms — not just the timing models.
//
// A Platform is safe for concurrent use; operations on distinct tensors
// may proceed from multiple goroutines.
type Platform struct {
	mu                     sync.Mutex
	cpuEnclave, npuEnclave *enclave.Enclave
	cpuRegion, npuRegion   *mee.Region
	channel                *comm.TrustedChannel
	verifier               *npumac.Verifier
	arena                  *tensor.Arena
	tensors                map[string]*tensor.Tensor
	transferred            map[string]npumac.TensorID
	nextID                 npumac.TensorID
	regionBytes            int
	lineBytes              int
}

// platformConfig collects the option-settable knobs.
type platformConfig struct {
	regionBytes int
	seed        uint64
	lineBytes   int
}

// PlatformOption configures NewPlatform.
type PlatformOption func(*platformConfig)

// WithRegionBytes sets the protected memory size per enclave
// (default 8 MB).
func WithRegionBytes(n int) PlatformOption {
	return func(c *platformConfig) { c.regionBytes = n }
}

// WithSeed makes key generation deterministic per platform instance.
func WithSeed(seed uint64) PlatformOption {
	return func(c *platformConfig) { c.seed = seed }
}

// WithLineSize sets the protected-memory cacheline size in bytes
// (default 64; must be a power of two >= 16). Both enclaves, the tensor
// arena, and the transfer protocol share the geometry.
func WithLineSize(n int) PlatformOption {
	return func(c *platformConfig) { c.lineBytes = n }
}

// NewPlatform creates both enclaves, runs remote attestation and the
// Diffie–Hellman key exchange (Section 4.4.2), and allocates the mirrored
// protected regions the direct channel moves ciphertext between.
func NewPlatform(opts ...PlatformOption) (*Platform, error) {
	cfg := platformConfig{regionBytes: 8 << 20, lineBytes: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.regionBytes <= 0 {
		cfg.regionBytes = 8 << 20
	}
	if cfg.lineBytes < 16 || cfg.lineBytes&(cfg.lineBytes-1) != 0 {
		return nil, fmt.Errorf("tensortee: line size must be a power of two >= 16, got %d", cfg.lineBytes)
	}
	cpuE := enclave.Create(enclave.CPUEnclave, []byte("tensortee-cpu-image-v1"), cfg.seed*2+1)
	npuE := enclave.Create(enclave.NPUEnclave, []byte("tensortee-npu-image-v1"), cfg.seed*2+2)
	kCPU, _, err := enclave.Pair(cpuE, npuE)
	if err != nil {
		return nil, fmt.Errorf("tensortee: attestation failed: %w", err)
	}
	const base = 0x1000_0000
	return &Platform{
		cpuEnclave:  cpuE,
		npuEnclave:  npuE,
		cpuRegion:   mee.NewRegion(kCPU, base, cfg.regionBytes, cfg.lineBytes),
		npuRegion:   mee.NewRegion(kCPU, base, cfg.regionBytes, cfg.lineBytes),
		channel:     comm.NewTrustedChannel(kCPU),
		verifier:    npumac.NewVerifier(64),
		arena:       tensor.NewArena(base, cfg.lineBytes),
		tensors:     make(map[string]*tensor.Tensor),
		transferred: make(map[string]npumac.TensorID),
		regionBytes: cfg.regionBytes,
		lineBytes:   cfg.lineBytes,
	}, nil
}

// PlatformConfig sizes the functional platform.
//
// Deprecated: use NewPlatform with WithRegionBytes / WithSeed /
// WithLineSize options instead.
type PlatformConfig struct {
	// RegionBytes is the protected memory size per enclave (default 8 MB).
	RegionBytes int
	// Seed makes key generation deterministic per platform instance.
	Seed uint64
}

// NewPlatformFromConfig builds a platform from the legacy config struct.
//
// Deprecated: use NewPlatform with functional options instead.
func NewPlatformFromConfig(cfg PlatformConfig) (*Platform, error) {
	return NewPlatform(WithRegionBytes(cfg.RegionBytes), WithSeed(cfg.Seed))
}

func (p *Platform) region(s Side) *mee.Region {
	if s == CPUSide {
		return p.cpuRegion
	}
	return p.npuRegion
}

// TensorHandle is a reference to one named tensor of a Platform. All
// methods route through the owning platform, so handles stay valid across
// transfers and rewrites.
type TensorHandle struct {
	p    *Platform
	name string
}

// Name returns the tensor's name.
func (h *TensorHandle) Name() string { return h.name }

// Elems returns the number of fp32 elements.
func (h *TensorHandle) Elems() int {
	h.p.mu.Lock()
	defer h.p.mu.Unlock()
	return h.p.tensors[h.name].Elems()
}

// Bytes returns the byte footprint.
func (h *TensorHandle) Bytes() int {
	h.p.mu.Lock()
	defer h.p.mu.Unlock()
	return h.p.tensors[h.name].Bytes()
}

// Write overwrites the tensor's contents on the given side
// (re-encrypting under a fresh version number).
func (h *TensorHandle) Write(side Side, vals []float32) error {
	return h.p.WriteTensor(side, h.name, vals)
}

// Read decrypts and verifies the tensor from the given side.
func (h *TensorHandle) Read(side Side) ([]float32, error) {
	return h.p.ReadTensor(side, h.name)
}

// Transfer moves the tensor between enclaves with the direct protocol.
func (h *TensorHandle) Transfer(from Side) error {
	return h.p.Transfer(from, h.name)
}

// TransferStaged moves the tensor with the Graviton-like staged protocol.
func (h *TensorHandle) TransferStaged(from Side) error {
	return h.p.TransferStaged(from, h.name)
}

// Verify completes the tensor's delayed verification (the verification
// barrier for just this tensor).
func (h *TensorHandle) Verify() error {
	return h.p.VerifyBarrier(h.name)
}

// Poisoned reports whether the tensor is still unverified.
func (h *TensorHandle) Poisoned() bool {
	return h.p.Poisoned(h.name)
}

// CreateTensor allocates a named fp32 tensor in the shared address layout,
// writes vals into the given side's protected memory (encrypting it), and
// returns a handle to it.
func (p *Platform) CreateTensor(side Side, name string, vals []float32) (*TensorHandle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.tensors[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrTensorExists, name)
	}
	// Check capacity before touching the arena: a rejected allocation must
	// not leak address space (the arena is a bump allocator).
	if bytes := uint64(len(vals) * 4); p.arena.Next()+bytes > p.region(side).End() {
		return nil, fmt.Errorf("%w: tensor %q (%d bytes) exceeds the protected region (%d bytes)",
			ErrRegionFull, name, bytes, p.regionBytes)
	}
	t := p.arena.AllocTensor(name, tensor.Shape{len(vals)}, tensor.FP32)
	t.Data = make([]byte, t.Bytes())
	t.SetFloat32s(vals)
	if _, err := p.region(side).WriteBytes(t.Addr, t.Data); err != nil {
		return nil, classify(err)
	}
	p.tensors[name] = t
	return &TensorHandle{p: p, name: name}, nil
}

// Tensor returns a handle to an existing tensor.
func (p *Platform) Tensor(name string) (*TensorHandle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tensors[name]; !ok {
		return nil, errUnknownTensor(name)
	}
	return &TensorHandle{p: p, name: name}, nil
}

// WriteTensor overwrites an existing tensor's contents on the given side
// (re-encrypting under a fresh version number).
func (p *Platform) WriteTensor(side Side, name string, vals []float32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tensors[name]
	if !ok {
		return errUnknownTensor(name)
	}
	if len(vals) != t.Elems() {
		return fmt.Errorf("tensortee: tensor %q holds %d elems, got %d", name, t.Elems(), len(vals))
	}
	buf := &tensor.Tensor{Name: name, Shape: t.Shape, DType: t.DType, Data: make([]byte, t.Bytes())}
	buf.SetFloat32s(vals)
	_, err := p.region(side).WriteBytes(t.Addr, buf.Data)
	return classify(err)
}

// ReadTensor decrypts and verifies a tensor from the given side. A tensor
// whose delayed verification is still pending (or has failed) cannot be
// consumed: the read fails with ErrPoisoned until VerifyBarrier clears it.
func (p *Platform) ReadTensor(side Side, name string) ([]float32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tensors[name]
	if !ok {
		return nil, errUnknownTensor(name)
	}
	if id, ok := p.transferred[name]; ok && p.verifier.Poisoned(id) {
		return nil, fmt.Errorf("%w: tensor %q read before its verification barrier", ErrPoisoned, name)
	}
	raw, err := p.region(side).ReadBytes(t.Addr, t.Bytes())
	if err != nil {
		return nil, classify(err)
	}
	view := &tensor.Tensor{Name: name, Shape: t.Shape, DType: t.DType, Data: raw}
	return view.Float32s(), nil
}

// Transfer moves a tensor between the enclaves with the direct protocol:
// ciphertext over the direct channel, (address, VN, MAC) over the trusted
// channel, no re-encryption. Verification is delayed — the tensor is
// poisoned until VerifyBarrier clears it (Section 4.3).
func (p *Platform) Transfer(from Side, name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tensors[name]
	if !ok {
		return errUnknownTensor(name)
	}
	src, dst := p.region(from), p.region(other(from))
	if err := comm.DirectTransfer(src, dst, t.Addr, t.Bytes(), p.channel, false); err != nil {
		return classify(err)
	}
	// Register the delayed verification obligation.
	id := p.nextID
	p.nextID++
	p.transferred[name] = id
	p.verifier.BeginRead(id, src.StoredLineMACXOR(t.Addr, t.Bytes()))
	for off := 0; off < t.Bytes(); off += p.lineBytes {
		_, mac := dst.ReadLineUnverified(t.Addr+uint64(off), dst.VN(t.Addr+uint64(off)))
		p.verifier.AccumulateLine(id, mac)
	}
	return nil
}

// TransferStaged moves a tensor with the Graviton-like baseline protocol
// (Figure 6a): decrypt out of the source enclave, re-encrypt under the
// session key into non-secure staging, cross the link, decrypt, and
// re-encrypt into the destination enclave. Functionally equivalent to
// Transfer but with four crypto passes; it exists so applications can
// compare the protocols and so tests can pin their equivalence.
func (p *Platform) TransferStaged(from Side, name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tensors[name]
	if !ok {
		return errUnknownTensor(name)
	}
	src, dst := p.region(from), p.region(other(from))
	seq := uint64(p.nextID) | 1<<32 // staging sequence domain
	p.nextID++
	return classify(comm.StagedTransfer(src, dst, t.Addr, t.Bytes(), p.cpuEnclave.SessionKey(), seq))
}

// VerifyBarrier is the verification barrier pragma: it completes the
// delayed verification of the named tensors and fails closed if any was
// tampered with in transit or in destination memory. Repeated names are
// deduplicated — each pending verification completes exactly once.
func (p *Platform) VerifyBarrier(names ...string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[npumac.TensorID]bool, len(names))
	ids := make([]npumac.TensorID, 0, len(names))
	for _, name := range names {
		id, ok := p.transferred[name]
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		if err := p.verifier.CompleteRead(id); err != nil {
			return classify(fmt.Errorf("tensor %q: %w", name, err))
		}
		ids = append(ids, id)
	}
	return classify(p.verifier.Barrier(ids...))
}

// Poisoned reports whether a transferred tensor is still unverified.
func (p *Platform) Poisoned(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.transferred[name]
	return ok && p.verifier.Poisoned(id)
}

// AdamStep runs a real fused Adam update inside the CPU enclave with the
// DeepSpeed default learning rate (1e-3): the four tensors are decrypted
// from protected memory, updated, and re-encrypted.
func (p *Platform) AdamStep(w, g, m, v string, step int) error {
	return p.AdamStepWithLR(w, g, m, v, step, 1e-3)
}

// AdamStepWithLR is AdamStep with an explicit learning rate.
func (p *Platform) AdamStepWithLR(w, g, m, v string, step int, lr float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	get := func(name string) (*tensor.Tensor, error) {
		t, ok := p.tensors[name]
		if !ok {
			return nil, errUnknownTensor(name)
		}
		// The optimizer consumes tensors like any other reader: a
		// transferred tensor whose delayed verification is pending (or
		// failed) must not reach the update (fail closed, Section 4.3).
		if id, ok := p.transferred[name]; ok && p.verifier.Poisoned(id) {
			return nil, fmt.Errorf("%w: tensor %q consumed before its verification barrier", ErrPoisoned, name)
		}
		raw, err := p.cpuRegion.ReadBytes(t.Addr, t.Bytes())
		if err != nil {
			return nil, classify(err)
		}
		return &tensor.Tensor{Name: name, Addr: t.Addr, Shape: t.Shape, DType: t.DType, Data: raw}, nil
	}
	tw, err := get(w)
	if err != nil {
		return err
	}
	tg, err := get(g)
	if err != nil {
		return err
	}
	tm, err := get(m)
	if err != nil {
		return err
	}
	tv, err := get(v)
	if err != nil {
		return err
	}
	params := workload.DefaultAdam()
	params.Step = step
	params.LR = lr
	if err := workload.AdamStep(tw, tg, tm, tv, params); err != nil {
		return err
	}
	for _, t := range []*tensor.Tensor{tw, tm, tv} {
		if _, err := p.cpuRegion.WriteBytes(t.Addr, t.Data); err != nil {
			return classify(err)
		}
	}
	return nil
}

// TamperMemory flips one bit of the ciphertext backing a tensor on the
// given side — the bus/cold-boot adversary of the threat model. bit is the
// absolute bit offset within the tensor and must be in
// [0, 8*Bytes()); out-of-range bits are rejected instead of silently
// wrapping onto a different cacheline. Subsequent reads or barriers must
// detect the flip.
func (p *Platform) TamperMemory(side Side, name string, bit int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tensors[name]
	if !ok {
		return errUnknownTensor(name)
	}
	if bit < 0 || bit >= t.Bytes()*8 {
		return fmt.Errorf("tensortee: bit %d out of range for tensor %q (%d bits)", bit, name, t.Bytes()*8)
	}
	p.region(side).TamperCipher(t.Addr+uint64(bit/8), bit)
	return nil
}

// Attested reports whether the two enclaves hold an established session.
func (p *Platform) Attested() bool {
	return p.cpuEnclave.SessionKey() != nil && p.cpuEnclave.SessionKey().Equal(p.npuEnclave.SessionKey())
}

func other(s Side) Side {
	if s == CPUSide {
		return NPUSide
	}
	return CPUSide
}
