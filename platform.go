package tensortee

import (
	"fmt"

	"tensortee/internal/comm"
	"tensortee/internal/enclave"
	"tensortee/internal/mee"
	"tensortee/internal/npumac"
	"tensortee/internal/tensor"
	"tensortee/internal/workload"
)

// Side names one of the two enclaves of a Platform.
type Side int

const (
	// CPUSide is the host enclave (optimizer states, Meta Table).
	CPUSide Side = iota
	// NPUSide is the accelerator enclave (GDDR memory, delayed verifier).
	NPUSide
)

func (s Side) String() string {
	if s == CPUSide {
		return "cpu"
	}
	return "npu"
}

// Platform is the functional secure-collaboration runtime: two attested
// enclaves sharing a DH session key, each backing its tensors with real
// AES-CTR protected memory, connected by the direct transfer protocol.
// It exists so applications (and the examples) can exercise the actual
// security mechanisms — not just the timing models.
type Platform struct {
	cpuEnclave, npuEnclave *enclave.Enclave
	cpuRegion, npuRegion   *mee.Region
	channel                *comm.TrustedChannel
	verifier               *npumac.Verifier
	arena                  *tensor.Arena
	tensors                map[string]*tensor.Tensor
	transferred            map[string]npumac.TensorID
	nextID                 npumac.TensorID
	regionBytes            int
}

// PlatformConfig sizes the functional platform.
type PlatformConfig struct {
	// RegionBytes is the protected memory size per enclave (default 8 MB).
	RegionBytes int
	// Seed makes key generation deterministic per platform instance.
	Seed uint64
}

// NewPlatform creates both enclaves, runs remote attestation and the
// Diffie–Hellman key exchange (Section 4.4.2), and allocates the mirrored
// protected regions the direct channel moves ciphertext between.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.RegionBytes <= 0 {
		cfg.RegionBytes = 8 << 20
	}
	cpuE := enclave.Create(enclave.CPUEnclave, []byte("tensortee-cpu-image-v1"), cfg.Seed*2+1)
	npuE := enclave.Create(enclave.NPUEnclave, []byte("tensortee-npu-image-v1"), cfg.Seed*2+2)
	kCPU, _, err := enclave.Pair(cpuE, npuE)
	if err != nil {
		return nil, fmt.Errorf("tensortee: attestation failed: %w", err)
	}
	const base = 0x1000_0000
	return &Platform{
		cpuEnclave:  cpuE,
		npuEnclave:  npuE,
		cpuRegion:   mee.NewRegion(kCPU, base, cfg.RegionBytes, 64),
		npuRegion:   mee.NewRegion(kCPU, base, cfg.RegionBytes, 64),
		channel:     comm.NewTrustedChannel(kCPU),
		verifier:    npumac.NewVerifier(64),
		arena:       tensor.NewArena(base, 64),
		tensors:     make(map[string]*tensor.Tensor),
		transferred: make(map[string]npumac.TensorID),
		regionBytes: cfg.RegionBytes,
	}, nil
}

func (p *Platform) region(s Side) *mee.Region {
	if s == CPUSide {
		return p.cpuRegion
	}
	return p.npuRegion
}

// CreateTensor allocates a named fp32 tensor in the shared address layout
// and writes vals into the given side's protected memory (encrypting it).
func (p *Platform) CreateTensor(side Side, name string, vals []float32) error {
	if _, exists := p.tensors[name]; exists {
		return fmt.Errorf("tensortee: tensor %q already exists", name)
	}
	t := p.arena.AllocTensor(name, tensor.Shape{len(vals)}, tensor.FP32)
	if t.End() > p.region(side).End() {
		return fmt.Errorf("tensortee: tensor %q (%d bytes) exceeds the protected region", name, t.Bytes())
	}
	t.Data = make([]byte, t.Bytes())
	t.SetFloat32s(vals)
	if _, err := p.region(side).WriteBytes(t.Addr, t.Data); err != nil {
		return err
	}
	p.tensors[name] = t
	return nil
}

// WriteTensor overwrites an existing tensor's contents on the given side
// (re-encrypting under a fresh version number).
func (p *Platform) WriteTensor(side Side, name string, vals []float32) error {
	t, ok := p.tensors[name]
	if !ok {
		return fmt.Errorf("tensortee: unknown tensor %q", name)
	}
	if len(vals) != t.Elems() {
		return fmt.Errorf("tensortee: tensor %q holds %d elems, got %d", name, t.Elems(), len(vals))
	}
	buf := &tensor.Tensor{Name: name, Shape: t.Shape, DType: t.DType, Data: make([]byte, t.Bytes())}
	buf.SetFloat32s(vals)
	_, err := p.region(side).WriteBytes(t.Addr, buf.Data)
	return err
}

// ReadTensor decrypts and verifies a tensor from the given side.
func (p *Platform) ReadTensor(side Side, name string) ([]float32, error) {
	t, ok := p.tensors[name]
	if !ok {
		return nil, fmt.Errorf("tensortee: unknown tensor %q", name)
	}
	raw, err := p.region(side).ReadBytes(t.Addr, t.Bytes())
	if err != nil {
		return nil, err
	}
	view := &tensor.Tensor{Name: name, Shape: t.Shape, DType: t.DType, Data: raw}
	return view.Float32s(), nil
}

// Transfer moves a tensor between the enclaves with the direct protocol:
// ciphertext over the direct channel, (address, VN, MAC) over the trusted
// channel, no re-encryption. Verification is delayed — the tensor is
// poisoned until VerifyBarrier clears it (Section 4.3).
func (p *Platform) Transfer(from Side, name string) error {
	t, ok := p.tensors[name]
	if !ok {
		return fmt.Errorf("tensortee: unknown tensor %q", name)
	}
	src, dst := p.region(from), p.region(other(from))
	if err := comm.DirectTransfer(src, dst, t.Addr, t.Bytes(), p.channel, false); err != nil {
		return err
	}
	// Register the delayed verification obligation.
	id := p.nextID
	p.nextID++
	p.transferred[name] = id
	p.verifier.BeginRead(id, src.StoredLineMACXOR(t.Addr, t.Bytes()))
	for off := 0; off < t.Bytes(); off += 64 {
		_, mac := dst.ReadLineUnverified(t.Addr+uint64(off), dst.VN(t.Addr+uint64(off)))
		p.verifier.AccumulateLine(id, mac)
	}
	return nil
}

// TransferStaged moves a tensor with the Graviton-like baseline protocol
// (Figure 6a): decrypt out of the source enclave, re-encrypt under the
// session key into non-secure staging, cross the link, decrypt, and
// re-encrypt into the destination enclave. Functionally equivalent to
// Transfer but with four crypto passes; it exists so applications can
// compare the protocols and so tests can pin their equivalence.
func (p *Platform) TransferStaged(from Side, name string) error {
	t, ok := p.tensors[name]
	if !ok {
		return fmt.Errorf("tensortee: unknown tensor %q", name)
	}
	src, dst := p.region(from), p.region(other(from))
	seq := uint64(p.nextID) | 1<<32 // staging sequence domain
	p.nextID++
	return comm.StagedTransfer(src, dst, t.Addr, t.Bytes(), p.cpuEnclave.SessionKey(), seq)
}

// VerifyBarrier is the verification barrier pragma: it completes the
// delayed verification of the named tensors and fails closed if any was
// tampered with in transit or in destination memory.
func (p *Platform) VerifyBarrier(names ...string) error {
	for _, name := range names {
		id, ok := p.transferred[name]
		if !ok {
			continue
		}
		if err := p.verifier.CompleteRead(id); err != nil {
			return fmt.Errorf("tensor %q: %w", name, err)
		}
	}
	ids := make([]npumac.TensorID, 0, len(names))
	for _, name := range names {
		if id, ok := p.transferred[name]; ok {
			ids = append(ids, id)
		}
	}
	return p.verifier.Barrier(ids...)
}

// Poisoned reports whether a transferred tensor is still unverified.
func (p *Platform) Poisoned(name string) bool {
	id, ok := p.transferred[name]
	return ok && p.verifier.Poisoned(id)
}

// AdamStep runs a real fused Adam update inside the CPU enclave with the
// DeepSpeed default learning rate (1e-3): the four tensors are decrypted
// from protected memory, updated, and re-encrypted.
func (p *Platform) AdamStep(w, g, m, v string, step int) error {
	return p.AdamStepWithLR(w, g, m, v, step, 1e-3)
}

// AdamStepWithLR is AdamStep with an explicit learning rate.
func (p *Platform) AdamStepWithLR(w, g, m, v string, step int, lr float64) error {
	get := func(name string) (*tensor.Tensor, error) {
		t, ok := p.tensors[name]
		if !ok {
			return nil, fmt.Errorf("tensortee: unknown tensor %q", name)
		}
		raw, err := p.cpuRegion.ReadBytes(t.Addr, t.Bytes())
		if err != nil {
			return nil, err
		}
		return &tensor.Tensor{Name: name, Addr: t.Addr, Shape: t.Shape, DType: t.DType, Data: raw}, nil
	}
	tw, err := get(w)
	if err != nil {
		return err
	}
	tg, err := get(g)
	if err != nil {
		return err
	}
	tm, err := get(m)
	if err != nil {
		return err
	}
	tv, err := get(v)
	if err != nil {
		return err
	}
	params := workload.DefaultAdam()
	params.Step = step
	params.LR = lr
	if err := workload.AdamStep(tw, tg, tm, tv, params); err != nil {
		return err
	}
	for _, t := range []*tensor.Tensor{tw, tm, tv} {
		if _, err := p.cpuRegion.WriteBytes(t.Addr, t.Data); err != nil {
			return err
		}
	}
	return nil
}

// TamperMemory flips a bit of the ciphertext backing a tensor on the given
// side — the bus/cold-boot adversary of the threat model. Subsequent reads
// or barriers must detect it.
func (p *Platform) TamperMemory(side Side, name string, bit int) error {
	t, ok := p.tensors[name]
	if !ok {
		return fmt.Errorf("tensortee: unknown tensor %q", name)
	}
	p.region(side).TamperCipher(t.Addr+uint64(bit/8%t.Bytes())&^63, bit)
	return nil
}

// Attested reports whether the two enclaves hold an established session.
func (p *Platform) Attested() bool {
	return p.cpuEnclave.SessionKey() != nil && p.cpuEnclave.SessionKey().Equal(p.npuEnclave.SessionKey())
}

func other(s Side) Side {
	if s == CPUSide {
		return NPUSide
	}
	return CPUSide
}
