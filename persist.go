package tensortee

import (
	"encoding/json"
	"fmt"
)

// The persistence codec serializes a Result for the content-addressed
// disk store without losing anything the renderers depend on. The public
// JSON form (Result.JSON) is deliberately lossy for numeric cells — it
// emits the number and drops the rendered text, and decoding fabricates
// a full-precision rendering — so a Result that round-tripped through it
// would no longer produce byte-identical Text/CSV output. The stored
// form keeps both the text and the number of every cell, so
//
//	decode(encode(res)).Text/JSON/CSV == res.Text/JSON/CSV
//
// byte for byte (pinned over all 14 paper artifacts by
// TestStoredResultsRoundTripGolden). Elapsed is zeroed on encode: it is
// the only run-to-run varying field, and a stored result is by
// definition not freshly computed.

// storedResultVersion versions the stored payload; a decoder refuses
// other versions (the store's envelope already keys on build, this
// catches schema drift within one build).
const storedResultVersion = 1

type storedCell struct {
	Text   string  `json:"t,omitempty"`
	Number float64 `json:"n,omitempty"`
	IsNum  bool    `json:"in,omitempty"`
}

type storedTable struct {
	Title   string         `json:"title"`
	Columns []string       `json:"columns"`
	Rows    [][]storedCell `json:"rows"`
}

type storedResult struct {
	Version int                `json:"v"`
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Tables  []storedTable      `json:"tables,omitempty"`
	Scalars map[string]float64 `json:"scalars,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

// EncodeStored serializes the Result into the lossless form the
// persistent store keeps on disk. Decode with DecodeStoredResult.
func (r *Result) EncodeStored() ([]byte, error) {
	sr := storedResult{
		Version: storedResultVersion,
		ID:      r.ID,
		Title:   r.Title,
		Scalars: r.Scalars,
		Notes:   r.Notes,
	}
	for _, t := range r.Tables {
		st := storedTable{Title: t.Title, Columns: t.Columns}
		for _, row := range t.Rows {
			cells := make([]storedCell, len(row))
			for i, c := range row {
				cells[i] = storedCell{Text: c.Text, Number: c.Number, IsNum: c.IsNumber}
			}
			st.Rows = append(st.Rows, cells)
		}
		sr.Tables = append(sr.Tables, st)
	}
	b, err := json.Marshal(&sr)
	if err != nil {
		// Only non-finite floats can fail here; a result carrying them
		// cannot be persisted (and could not render as JSON either).
		return nil, fmt.Errorf("tensortee: encoding result %s for the store: %w", r.ID, err)
	}
	return b, nil
}

// DecodeStoredResult inverts EncodeStored. The returned Result has
// Elapsed zero (stored results are not freshly computed) and renders
// byte-identically to the Result that was encoded.
func DecodeStoredResult(b []byte) (*Result, error) {
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil {
		return nil, fmt.Errorf("tensortee: decoding stored result: %w", err)
	}
	if sr.Version != storedResultVersion {
		return nil, fmt.Errorf("tensortee: stored result version %d, this build reads %d", sr.Version, storedResultVersion)
	}
	if sr.ID == "" {
		return nil, fmt.Errorf("tensortee: stored result has no id")
	}
	res := &Result{
		ID:      sr.ID,
		Title:   sr.Title,
		Scalars: sr.Scalars,
		Notes:   sr.Notes,
	}
	for _, st := range sr.Tables {
		rt := ResultTable{Title: st.Title, Columns: st.Columns}
		for _, row := range st.Rows {
			cells := make([]Cell, len(row))
			for i, c := range row {
				cells[i] = Cell{Text: c.Text, Number: c.Number, IsNumber: c.IsNum}
			}
			rt.Rows = append(rt.Rows, cells)
		}
		res.Tables = append(res.Tables, rt)
	}
	return res, nil
}

// StoredMeasurement decodes a stored result payload (the checkpoint
// format campaign points persist) and extracts its headline scalars:
// the last listed system's speedup over the first (avg_speedup; 0 when
// the result has a single system) and its training-step time in seconds
// (total_s; 0 on results stored by builds that predate the scalar).
// This is the measurement hook search campaigns optimize over — exposed
// here so the campaign layer stays decoupled from the result codec.
func StoredMeasurement(payload []byte) (speedup, totalSeconds float64, err error) {
	res, err := DecodeStoredResult(payload)
	if err != nil {
		return 0, 0, err
	}
	// Missing scalars read as zero rather than failing: single-system
	// results legitimately have no speedup, and older checkpoints have no
	// total_s.
	speedup, _ = res.Scalar("avg_speedup")
	totalSeconds, _ = res.Scalar("total_s")
	return speedup, totalSeconds, nil
}
