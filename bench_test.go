// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for the paper-vs-measured record), plus ablation
// benches for the design choices.
//
// Headline numbers are surfaced as custom benchmark metrics, so
// `go test -bench . -benchmem` prints both the regeneration cost and the
// reproduced result.
package tensortee

import (
	"testing"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/experiments"
	"tensortee/internal/npumac"
	"tensortee/internal/npusim"
	"tensortee/internal/tenanalyzer"
	"tensortee/internal/workload"
)

// benchExperiment runs one experiment generator per iteration and reports
// the requested scalar metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Scalars[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- one benchmark per paper artifact ---------------------------------------

func BenchmarkTab1Config(b *testing.B)    { benchExperiment(b, "tab1") }
func BenchmarkTab2Workloads(b *testing.B) { benchExperiment(b, "tab2", "models") }

func BenchmarkFig3AdamThreads(b *testing.B) {
	benchExperiment(b, "fig3", "max_slowdown")
}

func BenchmarkFig4TensorStats(b *testing.B) {
	benchExperiment(b, "fig4", "max_tensor_count")
}

func BenchmarkFig5Breakdown(b *testing.B) {
	benchExperiment(b, "fig5", "baseline_comm_frac", "nonsecure_comm_frac")
}

func BenchmarkFig15Overlap(b *testing.B) {
	benchExperiment(b, "fig15", "overlap_gain")
}

func BenchmarkFig16Overall(b *testing.B) {
	benchExperiment(b, "fig16", "avg_speedup", "max_speedup", "avg_overhead_pct")
}

func BenchmarkFig17Breakdown(b *testing.B) {
	benchExperiment(b, "fig17")
}

func BenchmarkFig18HitRate(b *testing.B) {
	benchExperiment(b, "fig18", "final_hit_in", "final_hit_all")
}

func BenchmarkFig19CPUCompare(b *testing.B) {
	benchExperiment(b, "fig19", "sgx_8t", "tte_final_8t")
}

func BenchmarkFig20MACSweep(b *testing.B) {
	benchExperiment(b, "fig20", "norm_4096B", "norm_ours")
}

func BenchmarkFig21GradComm(b *testing.B) {
	benchExperiment(b, "fig21", "avg_raw_ratio")
}

func BenchmarkGEMMDetection(b *testing.B) {
	benchExperiment(b, "gemm", "hit_in")
}

func BenchmarkHWOverhead(b *testing.B) {
	benchExperiment(b, "hw", "total_kb")
}

// --- ablations (design choices DESIGN.md calls out) ---------------------------

// BenchmarkAblationMergeBudget sweeps the Meta Table merge bandwidth: with
// merging disabled, parallel chunk entries never consolidate.
func BenchmarkAblationMergeBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, budget := range []int{1, 2, 4} {
			cfg := tenanalyzer.DefaultConfig()
			cfg.MergeBudget = budget
			store := tenanalyzer.NewArrayVNStore(0, 64*1<<16, 64)
			an := tenanalyzer.New(cfg, store)
			for c := 0; c < 8; c++ {
				base := uint64(c * 8192 * 64)
				for i := 0; i < 8192; i++ {
					an.Read(base + uint64(i*64))
				}
			}
			for c := 0; c < 8; c++ {
				base := uint64(c * 8192 * 64)
				for i := 0; i < 8192; i++ {
					an.Write(base + uint64(i*64))
				}
			}
			if budget == 2 {
				b.ReportMetric(float64(an.LiveEntries()), "live_entries_b2")
			}
		}
	}
}

// BenchmarkAblationBoundaryExtension contrasts detection with and without
// hit-boundary extension ("gradual coverage", Figure 10): without it the
// filter must detect every 4-line fragment at full metadata cost.
func BenchmarkAblationBoundaryExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			cfg := tenanalyzer.DefaultConfig()
			cfg.DisableBoundaryExt = disable
			store := tenanalyzer.NewArrayVNStore(0, 64*1<<15, 64)
			an := tenanalyzer.New(cfg, store)
			for i := 0; i < 1<<15; i++ {
				an.Read(uint64(i * 64))
			}
			if disable {
				b.ReportMetric(float64(an.Stats().Miss), "misses_noext")
			} else {
				b.ReportMetric(float64(an.Stats().Miss), "misses_ext")
			}
		}
	}
}

// BenchmarkAblationFilterDepth sweeps the Tensor Filter collection depth
// (4 in the paper): deeper filters detect later but more conservatively.
func BenchmarkAblationFilterDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{2, 4, 8} {
			cfg := tenanalyzer.DefaultConfig()
			cfg.FilterDepth = depth
			store := tenanalyzer.NewArrayVNStore(0, 64*1<<14, 64)
			an := tenanalyzer.New(cfg, store)
			for i := 0; i < 1<<14; i++ {
				an.Read(uint64(i * 64))
			}
			if depth == 4 {
				b.ReportMetric(an.Stats().HitAllRate(), "hit_all_d4")
			}
		}
	}
}

// BenchmarkAblationMetaTableCapacity runs the over-capacity regime of the
// Section 6.2 scalability note: more tensors than Meta Table entries.
func BenchmarkAblationMetaTableCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{128, 512, 2048} {
			cfg := tenanalyzer.DefaultConfig()
			cfg.Entries = entries
			store := tenanalyzer.NewArrayVNStore(0, 64*1<<18, 64)
			an := tenanalyzer.New(cfg, store)
			// 1024 small tensors of 64 lines each: exceeds 512 entries.
			for t := 0; t < 1024; t++ {
				base := uint64(t * 64 * 64)
				for i := 0; i < 64; i++ {
					an.Read(base + uint64(i*64))
				}
			}
			an.ResetStats()
			for t := 0; t < 1024; t++ {
				base := uint64(t * 64 * 64)
				for i := 0; i < 64; i++ {
					an.Read(base + uint64(i*64))
				}
			}
			if entries == 512 {
				b.ReportMetric(an.Stats().HitInRate(), "hit_in_512e")
			}
			if entries == 2048 {
				b.ReportMetric(an.Stats().HitInRate(), "hit_in_2048e")
			}
		}
	}
}

// BenchmarkAblationDelayedVerificationCap sweeps the unverified-tensor cap
// of Section 4.3.
func BenchmarkAblationDelayedVerificationCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cap := range []int{1, 16, 64} {
			v := npumac.NewVerifier(cap)
			stalls := 0
			for t := 0; t < 256; t++ {
				if v.AtCapacity() {
					stalls++
					// drain one
					v.AccumulateLine(npumac.TensorID(t-cap), 0)
					v.CompleteRead(npumac.TensorID(t - cap))
				}
				v.BeginRead(npumac.TensorID(t), 0)
			}
			if cap == 1 {
				b.ReportMetric(float64(stalls), "stalls_cap1")
			}
		}
	}
}

// BenchmarkAblationDataflow contrasts the output-stationary mapping
// (paper's TPUv3 configuration) with a weight-stationary alternative on
// the GPT2-M forward layers.
func BenchmarkAblationDataflow(b *testing.B) {
	cfgSys := config.Default(config.BaselineSGXMGX)
	m, err := workload.ModelByName("GPT2-M")
	if err != nil {
		b.Fatal(err)
	}
	layers := m.ForwardGEMMs()
	for i := 0; i < b.N; i++ {
		osCfg := npusim.FromSystem(&cfgSys, npumac.SchemeCacheline, 64)
		osCfg.Secure = false
		osTotal := npusim.New(osCfg).RunLayers(layers).Total

		wsCfg := osCfg
		wsCfg.Dataflow = npusim.WeightStationary
		wsTotal := npusim.New(wsCfg).RunLayers(layers).Total

		b.ReportMetric(float64(wsTotal)/float64(osTotal), "ws_over_os")
	}
}

// BenchmarkAblationNPUGranularityFine contrasts the NPU MAC schemes on a
// single large layer (isolating the stall model from the sweep harness).
func BenchmarkAblationNPUGranularityFine(b *testing.B) {
	cfgSys := config.Default(config.BaselineSGXMGX)
	layer := npusim.GEMM{Name: "ffn", M: 1 << 14, K: 4096, N: 4096}
	for i := 0; i < b.N; i++ {
		base := npusim.FromSystem(&cfgSys, npumac.SchemeCacheline, 64)
		base.Secure = false
		ns := npusim.New(base).RunGEMM(layer).Total

		sec := npusim.FromSystem(&cfgSys, npumac.SchemeCoarse, 4096)
		sec.Secure = true
		coarse := npusim.New(sec).RunGEMM(layer).Total

		del := npusim.FromSystem(&cfgSys, npumac.SchemeTensorDelayed, 64)
		del.Secure = true
		delayed := npusim.New(del).RunGEMM(layer).Total

		b.ReportMetric(float64(coarse)/float64(ns), "coarse4k_norm")
		b.ReportMetric(float64(delayed)/float64(ns), "delayed_norm")
	}
}

// BenchmarkAblationCPUCalibration measures the cost of building a
// calibrated system (the CPU-simulation sample).
func BenchmarkAblationCPUCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem(config.TensorTEE); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepAllModels times the full 12-model x 3-system sweep
// (the fig16 workload without report rendering).
func BenchmarkTrainStepAllModels(b *testing.B) {
	systems := make([]*core.System, 0, 3)
	for _, k := range []config.SystemKind{config.NonSecure, config.BaselineSGXMGX, config.TensorTEE} {
		s, err := core.NewSystem(k)
		if err != nil {
			b.Fatal(err)
		}
		systems = append(systems, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range systems {
			for _, m := range workload.Models() {
				s.TrainStep(m)
			}
		}
	}
}

// BenchmarkFunctionalTransfer measures the functional direct-transfer path
// (real crypto) per megabyte.
func BenchmarkFunctionalTransfer(b *testing.B) {
	p, err := NewPlatform(WithRegionBytes(4 << 20))
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float32, 1<<18) // 1 MB
	if _, err := p.CreateTensor(NPUSide, "t", vals); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Transfer(NPUSide, "t"); err != nil {
			b.Fatal(err)
		}
		if err := p.VerifyBarrier("t"); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity guard so the bench file also runs under plain `go test`.
func TestBenchHarnessSmoke(t *testing.T) {
	if _, err := experiments.Run("tab2"); err != nil {
		t.Fatal(err)
	}
}
