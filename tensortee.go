// Package tensortee is a library-scale reproduction of "TensorTEE: Unifying
// Heterogeneous TEE Granularity for Efficient Secure Collaborative Tensor
// Computing" (ASPLOS 2024).
//
// It provides two things:
//
//   - A simulation API that times ZeRO-Offload LLM training steps on three
//     end-to-end systems — a Non-Secure reference, the paper's SGX+MGX
//     baseline, and TensorTEE — over a gem5-lite CPU model, a TPU-like NPU
//     model, and a PCIe transfer model. Every table and figure of the
//     paper's evaluation regenerates through a Runner:
//
//     r := tensortee.NewRunner(tensortee.WithParallelism(4))
//     res, err := r.Run(ctx, "fig16")         // one experiment
//     all, err := r.RunAll(ctx)               // everything, concurrently
//
//     Results come back typed (Result: tables, scalars, notes) with
//     Text/JSON/CSV renderers, and a shared calibration cache means each
//     system kind calibrates once per Runner, not once per experiment.
//     See cmd/tensorteesim and EXPERIMENTS.md for the experiment index.
//     Single steps can still be timed directly through System/TrainStep.
//
//   - A functional API (Platform) that actually runs the security
//     protocols: AES-CTR protected memory with per-tensor version numbers,
//     XOR tensor MACs with delayed verification and poison tracking,
//     remote attestation with Diffie–Hellman key exchange, and the direct
//     (no re-encryption) tensor transfer protocol between the CPU and NPU
//     enclaves. NewPlatform takes functional options (WithRegionBytes,
//     WithSeed, WithLineSize); CreateTensor returns a *TensorHandle whose
//     Write/Read/Transfer/Verify methods drive the protocol. Tampering
//     with the simulated off-chip memory or buses is detected and surfaced
//     as typed sentinel errors (ErrTampered, ErrPoisoned, ...) matchable
//     with errors.Is.
package tensortee

import (
	"context"
	"time"

	"tensortee/internal/config"
	"tensortee/internal/core"
	"tensortee/internal/experiments"
	"tensortee/internal/scenario"
	"tensortee/internal/sim"
	"tensortee/internal/workload"
)

// Kind selects one of the three evaluated systems.
type Kind int

const (
	// NonSecure disables all protection (the performance reference).
	NonSecure Kind = iota
	// BaselineSGXMGX is the paper's baseline: SGX-like CPU TEE, MGX-like
	// NPU TEE, Graviton-like staged communication.
	BaselineSGXMGX
	// TensorTEE is the unified tensor-granularity system.
	TensorTEE
)

// String names the system kind the way the paper does.
func (k Kind) String() string { return k.kind().String() }

func (k Kind) kind() config.SystemKind {
	switch k {
	case NonSecure:
		return config.NonSecure
	case BaselineSGXMGX:
		return config.BaselineSGXMGX
	default:
		return config.TensorTEE
	}
}

// Breakdown is the visible time of one training step per phase.
type Breakdown struct {
	// NPU, CPU, CommWeights and CommGrads are the per-phase visible
	// times: accelerator compute, host optimizer, weight upload, and
	// gradient offload.
	NPU, CPU, CommWeights, CommGrads time.Duration
	// Total is the step time: the sum of the visible phase times.
	Total time.Duration
}

func toDuration(t sim.Dur) time.Duration {
	// sim time is picoseconds; time.Duration is nanoseconds.
	return time.Duration(t / 1000)
}

// System is a calibrated end-to-end system simulator.
type System struct {
	inner *core.System
}

// NewSystem builds and calibrates a system of the given kind. Calibration
// runs a short CPU-simulation sample, so construction takes a moment.
func NewSystem(kind Kind) (*System, error) {
	s, err := core.NewSystem(kind.kind())
	if err != nil {
		return nil, err
	}
	return &System{inner: s}, nil
}

// TrainStep simulates one ZeRO-Offload training iteration for the named
// model (see ModelNames) and returns the visible time breakdown.
func (s *System) TrainStep(model string) (Breakdown, error) {
	m, err := workload.ModelByName(model)
	if err != nil {
		return Breakdown{}, err
	}
	b := s.inner.TrainStep(m)
	out := Breakdown{
		NPU:         toDuration(b.NPU),
		CPU:         toDuration(b.CPU),
		CommWeights: toDuration(b.CommW),
		CommGrads:   toDuration(b.CommG),
	}
	out.Total = out.NPU + out.CPU + out.CommWeights + out.CommGrads
	return out, nil
}

// Describe summarizes the system configuration.
func (s *System) Describe() string { return s.inner.Describe() }

// ModelInfo describes one Table-2 workload.
type ModelInfo struct {
	// Name is the workload's Table-2 name (e.g. "LLAMA2-7B").
	Name string
	// Params is the parameter count; ParamsLabel is its Table-2 rendering
	// (e.g. "7B").
	Params      int64
	ParamsLabel string
	// BatchSize, Layers and Hidden are the Table-2 training shape.
	BatchSize int
	Layers    int
	Hidden    int
	// TensorCount is the number of distinct tensors one step touches.
	TensorCount int
}

// ModelNames lists the Table-2 workloads in the paper's order.
func ModelNames() []string {
	var out []string
	for _, m := range workload.Models() {
		out = append(out, m.Name)
	}
	return out
}

// Model returns the named workload's description.
func Model(name string) (ModelInfo, error) {
	m, err := workload.ModelByName(name)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		Name:        m.Name,
		Params:      m.Params(),
		ParamsLabel: m.ParamsStr,
		BatchSize:   m.BatchSize,
		Layers:      m.Layers,
		Hidden:      m.Hidden,
		TensorCount: m.Stats().Count,
	}, nil
}

// ExperimentInfo describes one entry of the experiment index: the stable
// id plus the paper-artifact metadata shared by every index consumer (the
// CLI's -list, the tensorteed daemon's /v1/experiments, EXPERIMENTS.md).
type ExperimentInfo struct {
	// ID is the stable experiment id (e.g. "fig16").
	ID string `json:"id"`
	// Artifact names the paper artifact reproduced (e.g. "Figure 16").
	Artifact string `json:"artifact"`
	// About is a one-line description of what regenerates.
	About string `json:"about"`
	// Heavy marks experiments that calibrate end-to-end systems or run
	// long iteration sweeps.
	Heavy bool `json:"heavy"`
}

// Experiments lists the reproducible tables and figures with their
// paper-artifact metadata, in the paper's order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{ID: e.ID, Artifact: e.Artifact, About: e.About, Heavy: e.Heavy})
	}
	return out
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.Registry() {
		out = append(out, e.ID)
	}
	return out
}

// Scenario is a declarative custom experiment: a workload model (zoo name
// or custom transformer dims), a set of systems with structured Table-1
// overrides, a metric set, and an optional one-axis sweep. Build one in Go
// or decode it from JSON, then execute it with Runner.RunScenario:
//
//	spec := tensortee.Scenario{
//		Model:   tensortee.ScenarioModel{Name: "LLAMA2-7B"},
//		Systems: []tensortee.ScenarioSystem{{Kind: "sgx-mgx"}, {Kind: "tensortee"}},
//		Sweep:   &tensortee.ScenarioSweep{Axis: "meta_cache_kb", Values: []float64{64, 128, 256}},
//	}
//	res, err := tensortee.NewRunner().RunScenario(ctx, spec)
//
// The same JSON form drives `tensorteesim -scenario spec.json` and
// tensorteed's POST /v1/scenarios.
type Scenario = scenario.Spec

// ScenarioModel selects the scenario workload (see scenario.ModelSpec).
type ScenarioModel = scenario.ModelSpec

// ScenarioSystem is one evaluated system of a scenario.
type ScenarioSystem = scenario.SystemSpec

// ScenarioOverrides adjusts Table-1 knobs for one scenario system.
type ScenarioOverrides = scenario.Overrides

// ScenarioSweep is a scenario's one-axis parameter sweep.
type ScenarioSweep = scenario.Sweep

// Scenario validation sentinels, matchable with errors.Is. Every
// rejection matches ErrInvalidScenario; the specific causes additionally
// match their own sentinel.
var (
	// ErrInvalidScenario reports any scenario spec the engine refuses.
	ErrInvalidScenario = scenario.ErrInvalidSpec
	// ErrUnknownModel reports a scenario model name outside the Table-2 zoo.
	ErrUnknownModel = scenario.ErrUnknownModel
	// ErrBadSweep reports a malformed scenario sweep (unknown axis,
	// zero/negative bounds, non-integral values on integer axes).
	ErrBadSweep = scenario.ErrBadSweep
	// ErrUnsafeOverride reports a scenario override that would invalidate
	// system calibration (e.g. a protected region below the calibration
	// window).
	ErrUnsafeOverride = scenario.ErrUnsafeOverride
	// ErrUnknownMetric reports a scenario metric name outside
	// ScenarioMetrics().
	ErrUnknownMetric = scenario.ErrUnknownMetric
)

// ScenarioMetrics lists the valid scenario metric names.
func ScenarioMetrics() []string { return scenario.Metrics() }

// ScenarioSweepAxes lists the valid scenario sweep axis names.
func ScenarioSweepAxes() []string { return scenario.SweepAxes() }

// RunExperiment regenerates one of the paper's tables or figures and
// returns the rendered report.
//
// Deprecated: use Runner.Run, which returns a typed Result (render with
// Result.Text for the same output) and shares calibration across
// experiments.
func RunExperiment(id string) (string, error) {
	res, err := NewRunner().Run(context.Background(), id)
	if err != nil {
		return "", err
	}
	return res.Text(), nil
}

// ExperimentScalar runs an experiment and returns one of its headline
// numbers (e.g. fig16's "avg_speedup").
//
// Deprecated: use Runner.Run and Result.Scalar — re-running a whole
// experiment per scalar repeats all of its simulations; the typed Result
// exposes every scalar from a single run.
func ExperimentScalar(id, name string) (float64, error) {
	res, err := NewRunner().Run(context.Background(), id)
	if err != nil {
		return 0, err
	}
	return res.Scalar(name)
}
