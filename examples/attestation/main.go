// attestation walks the whole functional protocol end to end:
// enclave creation and measurement, mutual remote attestation, DH key
// exchange, a ZeRO-Offload round trip (gradients NPU->CPU via the direct
// channel, a real Adam step inside the CPU enclave, weights back), and the
// three attacks the threat model covers — ciphertext tampering, trusted
// channel tampering, and replay.
package main

import (
	"fmt"
	"log"

	"tensortee"
)

func main() {
	p, err := tensortee.NewPlatform(tensortee.PlatformConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. attestation + Diffie-Hellman key exchange:", status(p.Attested()))

	// --- ZeRO-Offload round trip -----------------------------------------
	n := 1024
	w := make([]float32, n)
	g := make([]float32, n)
	zero := make([]float32, n)
	for i := range w {
		w[i] = 1.0
		g[i] = float32(i%7) - 3.0
	}
	must(p.CreateTensor(tensortee.CPUSide, "w", w))
	must(p.CreateTensor(tensortee.CPUSide, "m", zero))
	must(p.CreateTensor(tensortee.CPUSide, "v", zero))
	must(p.CreateTensor(tensortee.NPUSide, "g", g))

	must(p.Transfer(tensortee.NPUSide, "g")) // gradients, direct channel
	must(p.VerifyBarrier("g"))
	fmt.Println("2. gradient transfer + verification barrier: ok")

	must(p.AdamStep("w", "g", "m", "v", 1)) // real fused Adam in the enclave
	updated, err := p.ReadTensor(tensortee.CPUSide, "w")
	must(err)
	fmt.Printf("3. Adam step inside the CPU enclave: w[0] %.4f -> %.4f\n", w[0], updated[0])

	must(p.Transfer(tensortee.CPUSide, "w")) // weights back to the NPU
	must(p.VerifyBarrier("w"))
	npuW, err := p.ReadTensor(tensortee.NPUSide, "w")
	must(err)
	fmt.Printf("4. weights back on the NPU: w[0]=%.4f (matches: %v)\n",
		npuW[0], npuW[0] == updated[0])

	// --- attacks -----------------------------------------------------------
	fmt.Println("\nattacks from the threat model:")
	must(p.CreateTensor(tensortee.NPUSide, "a1", []float32{1, 2, 3, 4}))
	must(p.TamperMemory(tensortee.NPUSide, "a1", 100))
	if err := p.Transfer(tensortee.NPUSide, "a1"); err != nil {
		fmt.Println("  - GDDR bit-flip: rejected at transfer:", short(err))
	} else if err := p.VerifyBarrier("a1"); err != nil {
		fmt.Println("  - GDDR bit-flip: caught at the barrier:", short(err))
	} else {
		log.Fatal("GDDR tamper went undetected")
	}

	if _, err := p.ReadTensor(tensortee.NPUSide, "a1"); err != nil {
		fmt.Println("  - direct read of tampered line: caught:", short(err))
	} else {
		log.Fatal("tampered read went undetected")
	}
}

func status(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}

func short(err error) string {
	s := err.Error()
	if len(s) > 80 {
		return s[:80] + "..."
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
