// attestation walks the whole functional protocol end to end:
// enclave creation and measurement, mutual remote attestation, DH key
// exchange, a ZeRO-Offload round trip (gradients NPU->CPU via the direct
// channel, a real Adam step inside the CPU enclave, weights back), and the
// attacks the threat model covers — ciphertext tampering surfacing as
// typed ErrTampered/ErrPoisoned sentinels.
package main

import (
	"errors"
	"fmt"
	"log"

	"tensortee"
)

func main() {
	p, err := tensortee.NewPlatform(tensortee.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. attestation + Diffie-Hellman key exchange:", status(p.Attested()))

	// --- ZeRO-Offload round trip -----------------------------------------
	n := 1024
	w := make([]float32, n)
	g := make([]float32, n)
	zero := make([]float32, n)
	for i := range w {
		w[i] = 1.0
		g[i] = float32(i%7) - 3.0
	}
	hw := create(p, tensortee.CPUSide, "w", w)
	create(p, tensortee.CPUSide, "m", zero)
	create(p, tensortee.CPUSide, "v", zero)
	hg := create(p, tensortee.NPUSide, "g", g)

	must(hg.Transfer(tensortee.NPUSide)) // gradients, direct channel
	must(hg.Verify())
	fmt.Println("2. gradient transfer + verification barrier: ok")

	must(p.AdamStep("w", "g", "m", "v", 1)) // real fused Adam in the enclave
	updated, err := hw.Read(tensortee.CPUSide)
	must(err)
	fmt.Printf("3. Adam step inside the CPU enclave: w[0] %.4f -> %.4f\n", w[0], updated[0])

	must(hw.Transfer(tensortee.CPUSide)) // weights back to the NPU
	must(hw.Verify())
	npuW, err := hw.Read(tensortee.NPUSide)
	must(err)
	fmt.Printf("4. weights back on the NPU: w[0]=%.4f (matches: %v)\n",
		npuW[0], npuW[0] == updated[0])

	// --- attacks -----------------------------------------------------------
	fmt.Println("\nattacks from the threat model:")
	a1 := create(p, tensortee.NPUSide, "a1", []float32{1, 2, 3, 4})
	must(p.TamperMemory(tensortee.NPUSide, "a1", 100))
	err = a1.Transfer(tensortee.NPUSide)
	if err == nil {
		err = a1.Verify()
	}
	if errors.Is(err, tensortee.ErrTampered) {
		fmt.Println("  - GDDR bit-flip: caught, errors.Is(err, ErrTampered):", short(err))
	} else if err != nil {
		fmt.Println("  - GDDR bit-flip: caught:", short(err))
	} else {
		log.Fatal("GDDR tamper went undetected")
	}

	if _, err := a1.Read(tensortee.NPUSide); err != nil {
		fmt.Println("  - direct read of tampered tensor: caught:", short(err))
	} else {
		log.Fatal("tampered read went undetected")
	}

	// Out-of-range tamper offsets are rejected, not silently wrapped.
	if err := p.TamperMemory(tensortee.NPUSide, "a1", 4*4*8); err != nil {
		fmt.Println("  - out-of-range tamper bit: rejected:", short(err))
	}
}

func create(p *tensortee.Platform, side tensortee.Side, name string, vals []float32) *tensortee.TensorHandle {
	h, err := p.CreateTensor(side, name, vals)
	if err != nil {
		log.Fatal(err)
	}
	return h
}

func status(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}

func short(err error) string {
	s := err.Error()
	if len(s) > 100 {
		return s[:100] + "..."
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
