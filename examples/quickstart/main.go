// Quickstart: build the three systems, simulate one GPT2-M training step
// on each, and show the functional security path — attestation, a direct
// tensor transfer, delayed verification, and tamper detection.
package main

import (
	"fmt"
	"log"
	"time"

	"tensortee"
)

func main() {
	// --- timing: one training step under each system ---------------------
	fmt.Println("== GPT2-M training step (simulated) ==")
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		b, err := sys.TrainStep("GPT2-M")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s total=%v\n", kind, b.Total.Round(time.Millisecond))
	}

	// --- function: a real secure transfer --------------------------------
	fmt.Println("\n== functional security path ==")
	p, err := tensortee.NewPlatform(tensortee.PlatformConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attestation + key exchange:", ok(p.Attested()))

	grads := []float32{0.25, -1.5, 3.0, 0.125}
	if err := p.CreateTensor(tensortee.NPUSide, "grad", grads); err != nil {
		log.Fatal(err)
	}
	if err := p.Transfer(tensortee.NPUSide, "grad"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("direct transfer NPU->CPU (no re-encryption): done,",
		"poisoned until barrier:", p.Poisoned("grad"))
	if err := p.VerifyBarrier("grad"); err != nil {
		log.Fatal(err)
	}
	got, err := p.ReadTensor(tensortee.CPUSide, "grad")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification barrier passed; CPU enclave reads:", got)

	// --- tamper detection -------------------------------------------------
	if err := p.CreateTensor(tensortee.NPUSide, "victim", []float32{1, 2, 3, 4}); err != nil {
		log.Fatal(err)
	}
	if err := p.TamperMemory(tensortee.NPUSide, "victim", 17); err != nil {
		log.Fatal(err)
	}
	if err := p.Transfer(tensortee.NPUSide, "victim"); err != nil {
		fmt.Println("tampered transfer rejected immediately:", err)
	} else if err := p.VerifyBarrier("victim"); err != nil {
		fmt.Println("tamper detected at verification barrier:", err)
	} else {
		log.Fatal("TAMPER WENT UNDETECTED")
	}
}

func ok(b bool) string {
	if b {
		return "ok"
	}
	return "FAILED"
}
