// Quickstart: regenerate a paper experiment through the typed Runner API,
// then show the functional security path — attestation, a direct tensor
// transfer through a TensorHandle, delayed verification, and tamper
// detection with typed sentinel errors.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"tensortee"
)

func main() {
	ctx := context.Background()

	// --- timing: one training step under each system ---------------------
	fmt.Println("== GPT2-M training step (simulated) ==")
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		b, err := sys.TrainStep("GPT2-M")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s total=%v\n", kind, b.Total.Round(time.Millisecond))
	}

	// --- typed experiment results through the Runner ----------------------
	runner := tensortee.NewRunner()
	res, err := runner.Run(ctx, "hw")
	if err != nil {
		log.Fatal(err)
	}
	total, _ := res.Scalar("total_kb")
	fmt.Printf("\n== %s ==\non-chip storage: %.1f KB (typed scalar, no string parsing)\n", res.Title, total)

	// --- function: a real secure transfer --------------------------------
	fmt.Println("\n== functional security path ==")
	p, err := tensortee.NewPlatform(tensortee.WithRegionBytes(8 << 20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attestation + key exchange:", ok(p.Attested()))

	grad, err := p.CreateTensor(tensortee.NPUSide, "grad", []float32{0.25, -1.5, 3.0, 0.125})
	if err != nil {
		log.Fatal(err)
	}
	if err := grad.Transfer(tensortee.NPUSide); err != nil {
		log.Fatal(err)
	}
	fmt.Println("direct transfer NPU->CPU (no re-encryption): done,",
		"poisoned until barrier:", grad.Poisoned())
	if _, err := grad.Read(tensortee.CPUSide); !errors.Is(err, tensortee.ErrPoisoned) {
		log.Fatalf("pre-barrier read should be poisoned, got %v", err)
	}
	if err := grad.Verify(); err != nil {
		log.Fatal(err)
	}
	got, err := grad.Read(tensortee.CPUSide)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification barrier passed; CPU enclave reads:", got)

	// --- tamper detection -------------------------------------------------
	victim, err := p.CreateTensor(tensortee.NPUSide, "victim", []float32{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.TamperMemory(tensortee.NPUSide, "victim", 17); err != nil {
		log.Fatal(err)
	}
	err = victim.Transfer(tensortee.NPUSide)
	if err == nil {
		err = victim.Verify()
	}
	switch {
	case errors.Is(err, tensortee.ErrTampered):
		fmt.Println("tamper detected (errors.Is(err, ErrTampered)):", err)
	case err != nil:
		fmt.Println("tamper detected:", err)
	default:
		log.Fatal("TAMPER WENT UNDETECTED")
	}
}

func ok(b bool) string {
	if b {
		return "ok"
	}
	return "FAILED"
}
