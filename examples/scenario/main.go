// Scenario: define a custom experiment the paper never ran — a
// LLaMA-shaped model evaluated on TensorTEE at three MEE metadata-cache
// sizes — and run it through the same calibrated, cached simulation
// pipeline as the paper's registry experiments.
//
// The same spec as JSON (see spec.json next to this file) drives the CLI
// (`tensorteesim -scenario spec.json`) and the daemon
// (`curl -d @spec.json http://localhost:8344/v1/scenarios`).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tensortee"
)

func main() {
	ctx := context.Background()
	runner := tensortee.NewRunner()

	// A LLaMA-2-7B-shaped transformer, spelled out as custom dimensions
	// (equivalently: ScenarioModel{Name: "LLAMA2-7B"}), compared across
	// the SGX+MGX baseline and TensorTEE while the metadata cache sweeps
	// 64 KB -> 256 KB. Listing the baseline first makes "speedup" the
	// paper's baseline-over-TensorTEE convention.
	spec := tensortee.Scenario{
		Name: "llama-meta-cache",
		Model: tensortee.ScenarioModel{
			Layers: 32, Hidden: 4096, Heads: 32, FFNDim: 11008,
			Vocab: 32000, Batch: 2, SeqLen: 1024,
		},
		Systems: []tensortee.ScenarioSystem{
			{Kind: "sgx-mgx"},
			{Kind: "tensortee"},
		},
		Metrics: []string{"total", "cpu", "comm", "speedup"},
		Sweep:   &tensortee.ScenarioSweep{Axis: "meta_cache_kb", Values: []float64{64, 128, 256}},
	}
	res, err := runner.RunScenario(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Text())
	fmt.Printf("[%d points x %d systems in %v]\n\n",
		int(res.Scalars["points"]), int(res.Scalars["systems"]), res.Elapsed.Round(1e6))

	// Validation is typed: a spec the engine refuses matches the exported
	// sentinels with errors.Is, before any simulation starts.
	bad := spec
	bad.Sweep = &tensortee.ScenarioSweep{Axis: "meta_cache_kb", Values: []float64{-64}}
	if _, err := runner.RunScenario(ctx, bad); errors.Is(err, tensortee.ErrBadSweep) {
		fmt.Println("negative sweep bound rejected:", err)
	}
}
