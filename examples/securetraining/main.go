// securetraining runs a real (functional) multi-step ZeRO-Offload training
// loop on the secure platform: a toy linear-regression model whose forward
// and backward passes run "on the NPU", gradients crossing to the CPU
// enclave through the direct protocol each step, a fused Adam update inside
// the CPU enclave, and updated weights shipped back — every tensor byte
// protected by AES-CTR memory encryption end to end, every transfer gated
// by a verification barrier. The loss goes down; the security never turns
// off.
package main

import (
	"fmt"
	"log"

	"tensortee"
)

// The toy task: fit y = 2x + 1 with w,b from a fixed dataset.
var (
	xs = []float32{-2, -1, 0, 1, 2, 3}
	ys = []float32{-3, -1, 1, 3, 5, 7}
)

// npuForwardBackward plays the accelerator role: given current weights it
// computes the loss and the gradients (this is the computation ZeRO-Offload
// leaves on the NPU).
func npuForwardBackward(w, b float32) (loss, gw, gb float32) {
	n := float32(len(xs))
	for i := range xs {
		pred := w*xs[i] + b
		diff := pred - ys[i]
		loss += diff * diff / n
		gw += 2 * diff * xs[i] / n
		gb += 2 * diff / n
	}
	return
}

func main() {
	p, err := tensortee.NewPlatform(tensortee.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	create := func(side tensortee.Side, name string, vals []float32) *tensortee.TensorHandle {
		h, err := p.CreateTensor(side, name, vals)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}

	// CPU enclave holds fp32 master weights and optimizer state
	// (ZeRO-Offload's layout, Figure 1).
	w := create(tensortee.CPUSide, "w", []float32{0, 0}) // [w, b]
	create(tensortee.CPUSide, "m", []float32{0, 0})
	create(tensortee.CPUSide, "v", []float32{0, 0})
	// NPU enclave holds the gradient buffer.
	g := create(tensortee.NPUSide, "g", []float32{0, 0})
	// Ship initial weights to the NPU.
	must(w.Transfer(tensortee.CPUSide))
	must(w.Verify())

	fmt.Println("step   loss        w        b")
	for step := 1; step <= 400; step++ {
		// NPU: forward+backward on its (decrypted-inside-the-enclave) weights.
		wvals, err := w.Read(tensortee.NPUSide)
		must(err)
		loss, gw, gb := npuForwardBackward(wvals[0], wvals[1])

		// NPU writes gradients into its protected memory...
		must(g.Write(tensortee.NPUSide, []float32{gw, gb}))

		// ...and they cross to the CPU via the direct channel + barrier.
		must(g.Transfer(tensortee.NPUSide))
		must(g.Verify())

		// CPU enclave: fused Adam on the master weights.
		must(p.AdamStepWithLR("w", "g", "m", "v", step, 0.05))

		// Updated weights return to the NPU for the next step.
		must(w.Transfer(tensortee.CPUSide))
		must(w.Verify())

		if step%80 == 0 || step == 1 {
			cur, err := w.Read(tensortee.CPUSide)
			must(err)
			fmt.Printf("%4d  %8.5f  %7.4f  %7.4f\n", step, loss, cur[0], cur[1])
		}
	}
	final, err := w.Read(tensortee.CPUSide)
	must(err)
	fmt.Printf("\nconverged to y = %.3fx + %.3f (target: y = 2x + 1)\n", final[0], final[1])
	fmt.Println("every step ran on AES-CTR protected memory with barrier-gated transfers")
}
