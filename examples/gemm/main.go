// gemm demonstrates TenAnalyzer's tensor-structure detection on the
// Section 6.2 workload: a tiled matrix multiply whose 2D access pattern is
// reassembled by the Tensor Filter and the multi-direction entry merging of
// Figure 11. It prints the hit-rate evolution and the detected structure,
// then cross-checks against the public "gemm" experiment via the Runner.
package main

import (
	"context"
	"fmt"
	"log"

	"tensortee"
	"tensortee/internal/tenanalyzer"
	"tensortee/internal/trace"
)

func main() {
	store := tenanalyzer.NewArrayVNStore(0, 1<<22, 64)
	an := tenanalyzer.New(tenanalyzer.DefaultConfig(), store)

	// 256x256 fp32 matrix, 64x64 tiles (Section 6.2).
	mk := func() trace.Stream {
		return trace.GEMMStream(trace.GEMMConfig{
			Base: 0, Rows: 256, Cols: 256, TileRows: 64, TileCols: 64,
		})
	}

	for pass := 1; pass <= 3; pass++ {
		an.ResetStats()
		s := mk()
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			an.Read(a.Addr)
		}
		st := an.Stats()
		fmt.Printf("pass %d: hit_in=%5.1f%% hit_boundary=%5.1f%% miss=%5.1f%%  (creations=%d merges=%d)\n",
			pass, st.HitInRate()*100, st.HitBoundaryRate()*100,
			100-100*st.HitAllRate(), st.Creations, st.Merges)
	}

	if e, ok := an.EntryAt(0); ok {
		fmt.Printf("\ndetected structure at 0x0: dims=%v (%d lines)\n", e.Dims, e.Lines())
		fmt.Println("paper: 98.8% hit_in after one full GEMM (Section 6.2)")
	}
	if err := an.CheckInvariant(); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
	} else {
		fmt.Println("on-chip/off-chip VN invariant holds for every covered line")
	}

	// The same study through the public experiment harness: a typed Result
	// with the headline scalar, no output parsing.
	res, err := tensortee.NewRunner().Run(context.Background(), "gemm")
	if err != nil {
		log.Fatal(err)
	}
	hitIn, err := res.Scalar("hit_in")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull cpusim pipeline (%s): hit_in=%.1f%% in %v\n",
		res.ID, hitIn*100, res.Elapsed.Round(1e6))
}
