// llmtraining regenerates the Figure 16/17 view — per-batch latency for
// all twelve Table-2 models under the three systems, plus the per-phase
// breakdown — through the typed Runner API: both experiments run
// concurrently over a shared calibration cache, and the tables are
// consumed as typed rows (no string parsing).
package main

import (
	"context"
	"fmt"
	"log"

	"tensortee"
)

func main() {
	runner := tensortee.NewRunner(
		tensortee.WithParallelism(2),
		tensortee.WithSystems(tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE),
	)
	results, err := runner.RunAll(context.Background(), "fig16", "fig17")
	if err != nil {
		log.Fatal(err)
	}
	fig16, fig17 := results[0], results[1]

	// Typed access: pick columns by name, read cells as numbers.
	perf := fig16.Tables[0]
	model, speedup, overhead := perf.Column("model"), perf.Column("speedup"), perf.Column("overhead vs NS (%)")
	fmt.Printf("%-12s %8s %9s\n", "model", "speedup", "overhead")
	for _, row := range perf.Rows {
		fmt.Printf("%-12s %7.2fx %8.1f%%\n",
			row[model].Text, row[speedup].Number, row[overhead].Number)
	}
	avg, err := fig16.Scalar("avg_speedup")
	if err != nil {
		log.Fatal(err)
	}
	max, err := fig16.Scalar("max_speedup")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage speedup over the baseline: %.2fx, max %.2fx (paper: 4.0x, up to 5.5x)\n", avg, max)

	fmt.Println("\nper-phase breakdown of GPT2-M (Figure 5/17):")
	bd := fig17.Tables[0]
	mCol, sCol := bd.Column("model"), bd.Column("system")
	npu, cpu, cw, cg := bd.Column("NPU"), bd.Column("CPU"), bd.Column("CommW"), bd.Column("CommG")
	for _, row := range bd.Rows {
		if row[mCol].Text != "GPT2-M" {
			continue
		}
		fmt.Printf("%-12s npu=%4.1f%% cpu=%4.1f%% commW=%4.1f%% commG=%4.1f%%\n",
			row[sCol].Text, row[npu].Number, row[cpu].Number, row[cw].Number, row[cg].Number)
	}
	fmt.Printf("\n[fig16 in %v, fig17 in %v — three calibrations shared across both]\n",
		fig16.Elapsed.Round(1e6), fig17.Elapsed.Round(1e6))
}
