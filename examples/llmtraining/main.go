// llmtraining sweeps all twelve Table-2 models across the three systems and
// prints the Figure 16/17 view: per-batch latency, the TensorTEE speedup
// over the SGX+MGX baseline, and the per-phase breakdown.
package main

import (
	"fmt"
	"log"
	"time"

	"tensortee"
)

func main() {
	systems := map[tensortee.Kind]*tensortee.System{}
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		sys, err := tensortee.NewSystem(kind)
		if err != nil {
			log.Fatal(err)
		}
		systems[kind] = sys
	}

	fmt.Printf("%-12s %-8s  %12s %12s %12s  %8s %9s\n",
		"model", "params", "non-secure", "SGX+MGX", "TensorTEE", "speedup", "overhead")
	var sumSpeedup float64
	names := tensortee.ModelNames()
	for _, name := range names {
		info, _ := tensortee.Model(name)
		var totals [3]time.Duration
		for i, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
			b, err := systems[kind].TrainStep(name)
			if err != nil {
				log.Fatal(err)
			}
			totals[i] = b.Total
		}
		speedup := float64(totals[1]) / float64(totals[2])
		overhead := (float64(totals[2])/float64(totals[0]) - 1) * 100
		sumSpeedup += speedup
		fmt.Printf("%-12s %-8s  %12v %12v %12v  %7.2fx %8.1f%%\n",
			name, info.ParamsLabel,
			totals[0].Round(time.Millisecond), totals[1].Round(time.Millisecond),
			totals[2].Round(time.Millisecond), speedup, overhead)
	}
	fmt.Printf("\naverage speedup over the baseline: %.2fx (paper: 4.0x, up to 5.5x)\n",
		sumSpeedup/float64(len(names)))

	fmt.Println("\nper-phase breakdown of GPT2-M (Figure 5/17):")
	for _, kind := range []tensortee.Kind{tensortee.NonSecure, tensortee.BaselineSGXMGX, tensortee.TensorTEE} {
		b, _ := systems[kind].TrainStep("GPT2-M")
		t := float64(b.Total)
		fmt.Printf("%-12s npu=%4.1f%% cpu=%4.1f%% commW=%4.1f%% commG=%4.1f%%\n",
			kind, 100*float64(b.NPU)/t, 100*float64(b.CPU)/t,
			100*float64(b.CommWeights)/t, 100*float64(b.CommGrads)/t)
	}
}
