package tensortee

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the repo's reader-facing markdown files: the root
// documents, docs/, and every README under examples/. Scaffolding files
// (ISSUE.md, SNIPPETS.md, PAPERS.md) are working notes, not navigation,
// and stay out of the contract.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "EXPERIMENTS.md", "ROADMAP.md", "PAPER.md", "CHANGES.md"}
	for _, dir := range []string{"docs", "examples"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
	return files
}

// mdLink matches inline markdown links and images; the group is the
// destination up to the first whitespace (so optional titles are ignored).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// markdownLinks extracts link destinations outside fenced code blocks.
func markdownLinks(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var links []string
	fenced := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			links = append(links, m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return links
}

// githubAnchor renders a heading the way GitHub's anchor generator does:
// lowercase, punctuation dropped, spaces to hyphens.
func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// markdownAnchors collects the anchor ids of a file's headings.
func markdownAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	anchors := make(map[string]bool)
	fenced := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[githubAnchor(strings.TrimLeft(line, "# "))] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return anchors
}

// TestDocLinksResolve fails on broken relative links in the repo's
// markdown: every non-external destination must name an existing file
// (or directory), and every #fragment must match a heading in its
// target. External links are out of scope — CI should not flake on
// someone else's uptime.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles(t) {
		for _, link := range markdownLinks(t, doc) {
			if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") ||
				strings.HasPrefix(link, "mailto:") {
				continue
			}
			target, frag, _ := strings.Cut(link, "#")
			targetPath := doc // pure-fragment links point into their own file
			if target != "" {
				targetPath = filepath.Join(filepath.Dir(doc), target)
				if _, err := os.Stat(targetPath); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, link, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(targetPath, ".md") {
				continue // anchors into non-markdown targets are not checkable
			}
			if !markdownAnchors(t, targetPath)[frag] {
				t.Errorf("%s: link %q: no heading in %s anchors to #%s", doc, link, targetPath, frag)
			}
		}
	}
}
