package tensortee

import (
	"testing"
)

func TestTensorHandleLifecycle(t *testing.T) {
	p := newTestPlatform(t)
	vals := []float32{3, 1, 4, 1, 5, 9, 2, 6}
	h, err := p.CreateTensor(NPUSide, "g", vals)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "g" || h.Elems() != 8 || h.Bytes() != 32 {
		t.Errorf("handle metadata: name=%s elems=%d bytes=%d", h.Name(), h.Elems(), h.Bytes())
	}
	if err := h.Transfer(NPUSide); err != nil {
		t.Fatal(err)
	}
	if !h.Poisoned() {
		t.Error("transferred tensor must be poisoned before the barrier")
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	if h.Poisoned() {
		t.Error("poison not cleared after Verify")
	}
	got, err := h.Read(CPUSide)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("g[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	// Write re-encrypts; a lookup handle sees the same tensor.
	if err := h.Write(NPUSide, []float32{8, 7, 6, 5, 4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	h2, err := p.Tensor("g")
	if err != nil {
		t.Fatal(err)
	}
	got, err = h2.Read(NPUSide)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 8 || got[7] != 1 {
		t.Errorf("rewrite through handle lost: %v", got)
	}
}

func TestTensorHandleStagedTransfer(t *testing.T) {
	p := newTestPlatform(t)
	h, err := p.CreateTensor(NPUSide, "d", []float32{1, -2, 3.5, -4.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.TransferStaged(NPUSide); err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(CPUSide)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 3.5 {
		t.Errorf("staged transfer through handle: %v", got)
	}
}

func TestNewPlatformOptions(t *testing.T) {
	// Deterministic seeding: same seed, same session keys.
	p1, err := NewPlatform(WithSeed(5), WithRegionBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Attested() {
		t.Error("platform not attested")
	}
	// Invalid line sizes are rejected.
	for _, bad := range []int{0, -64, 24, 100} {
		if _, err := NewPlatform(WithLineSize(bad)); err == nil {
			t.Errorf("line size %d accepted", bad)
		}
	}
}

func TestPlatformCustomLineSize(t *testing.T) {
	for _, line := range []int{16, 128, 256} {
		p, err := NewPlatform(WithRegionBytes(1<<20), WithLineSize(line))
		if err != nil {
			t.Fatalf("line %d: %v", line, err)
		}
		vals := make([]float32, 100) // 400 bytes: straddles lines at every size
		for i := range vals {
			vals[i] = float32(i) * 0.5
		}
		h, err := p.CreateTensor(NPUSide, "x", vals)
		if err != nil {
			t.Fatalf("line %d: %v", line, err)
		}
		if err := h.Transfer(NPUSide); err != nil {
			t.Fatalf("line %d transfer: %v", line, err)
		}
		if err := h.Verify(); err != nil {
			t.Fatalf("line %d verify: %v", line, err)
		}
		got, err := h.Read(CPUSide)
		if err != nil {
			t.Fatalf("line %d read: %v", line, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("line %d: x[%d] = %v, want %v", line, i, got[i], vals[i])
			}
		}
	}
}

func TestDeprecatedPlatformConfigWrapper(t *testing.T) {
	p, err := NewPlatformFromConfig(PlatformConfig{RegionBytes: 1 << 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Attested() {
		t.Error("legacy-config platform not attested")
	}
	h, err := p.CreateTensor(CPUSide, "x", []float32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := h.Read(CPUSide); err != nil || got[1] != 2 {
		t.Errorf("legacy platform round trip: %v %v", got, err)
	}
}

func TestPlatformConcurrentTensorOps(t *testing.T) {
	// Distinct tensors driven from concurrent goroutines: the platform
	// mutex must keep the arena, maps, channel, and verifier coherent
	// (meaningful under -race).
	p := newTestPlatform(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			name := string(rune('a' + i))
			h, err := p.CreateTensor(NPUSide, name, []float32{float32(i), float32(i + 1)})
			if err != nil {
				errs <- err
				return
			}
			if err := h.Transfer(NPUSide); err != nil {
				errs <- err
				return
			}
			if err := h.Verify(); err != nil {
				errs <- err
				return
			}
			got, err := h.Read(CPUSide)
			if err == nil && got[0] != float32(i) {
				errs <- errUnknownTensor(name)
				return
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
