module tensortee

go 1.23
