module tensortee

go 1.24
